"""``python -m repro`` -- the command-line front door.

See :mod:`repro.api.cli` for the subcommands.
"""

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
