"""A bounded in-memory LRU: the L1 tier of the tiered cache.

Bounded by entry count *and* approximate bytes (callers pass each
value's serialized size, so "approximate" means "the JSON text length",
not a deep ``sys.getsizeof`` walk).  The hot path is a read that hits:
it probes a plain dict with no lock -- atomic under the GIL -- and only
then takes the mutex for the recency stamp and the exact hit counter.
The mutex never covers I/O, computation or allocation of values, so
concurrent readers never serialize behind a fill of some other key.

Counters are exact (:class:`~repro.cache.stats.TierStats` hits, misses,
evictions) and the ``entries``/``bytes`` gauges are maintained
incrementally on every mutation, so snapshotting the cache is O(1) --
cheap enough to call per request (no scan, ever).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable

from ..errors import ConfigError
from .stats import TierStats

#: default entry bound of a workspace's in-memory plan tier.
DEFAULT_MAX_ENTRIES = 1024

#: default approximate byte bound of a workspace's in-memory plan tier.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class LRUCache:
    """A thread-safe LRU bounded by entries and approximate bytes.

    Args:
        max_entries: entry-count bound; must be >= 1.
        max_bytes: approximate byte bound over the sizes callers pass
            to :meth:`put`; None means unbounded bytes.

    Raises:
        ConfigError: for non-positive bounds.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ConfigError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # key -> (value, size); OrderedDict order IS the recency order
        # (oldest first).  Plain-dict probes without the lock are safe:
        # CPython dict reads are atomic, and move_to_end happens under
        # the mutex.
        self._entries: "OrderedDict[Hashable, tuple[object, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        """Current approximate occupancy (sum of the sizes passed in)."""
        return self._bytes

    def get(self, key: Hashable) -> object | None:
        """The cached value, or None; counts exactly one hit or miss."""
        entry = self._entries.get(key)  # lock-free probe
        with self._lock:
            if entry is None:
                # Re-probe under the lock: the entry may have landed (or
                # been evicted) between the probe and here; the counter
                # must describe what we actually return.
                entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            try:
                self._entries.move_to_end(key)
            except KeyError:  # pragma: no cover - racing eviction
                self._misses += 1
                return None
            self._hits += 1
            return entry[0]

    def put(self, key: Hashable, value: object, *, size: int = 0) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries to fit.

        Args:
            key: the content address.
            value: the cached object (stored as-is, never copied).
            size: the value's approximate serialized size in bytes --
                what the byte bound meters.
        """
        size = max(0, int(size))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self._evictions += 1

    def delete(self, key: Hashable) -> bool:
        """Drop one entry (no eviction counted); True when it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop every entry; optionally zero the counters too."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            if reset_stats:
                self._hits = self._misses = self._evictions = 0

    def keys(self) -> Iterable[Hashable]:
        """Current keys, oldest (least recently used) first."""
        with self._lock:
            return list(self._entries)

    @property
    def stats(self) -> TierStats:
        """Exact counters plus the O(1) occupancy gauges."""
        with self._lock:
            return TierStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
            )
