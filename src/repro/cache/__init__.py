"""Tiered content-addressed cache: in-memory LRU -> disk -> remote.

The workspace answers every plan/profile lookup through a tier stack:

* **L1** -- :class:`LRUCache`, per-process, bounded by entries and
  approximate bytes, lock-free reads (:mod:`repro.cache.lru`).
* **L2** -- the existing on-disk layout (``plans/<digest>.json`` +
  ``profiles.json``), format unchanged, still guarded by the
  ``FileLock``/single-flight machinery in :mod:`repro.api.workspace`.
* **L3** -- optionally, a shared :class:`CacheServer` reached through
  :class:`RemoteTier`, so a fleet of processes warms each other
  (:mod:`repro.cache.remote`).

Misses fall through tier by tier; hits fill back up (read-through);
fresh computations write through.  Every movement is counted exactly by
:class:`TierStats`/:class:`CacheStats` (:mod:`repro.cache.stats`).

This package is deliberately standalone (stdlib only, no imports from
``repro.api`` or ``repro.serve``) so the workspace layer can build on
it without an import cycle.
"""

from .lru import DEFAULT_MAX_BYTES, DEFAULT_MAX_ENTRIES, LRUCache
from .remote import (
    CACHE_SCHEMA_VERSION,
    CacheServer,
    RemoteTier,
    parse_address,
)
from .stats import CacheStats, TierStats

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "CacheServer",
    "CacheStats",
    "LRUCache",
    "RemoteTier",
    "TierStats",
    "parse_address",
]
