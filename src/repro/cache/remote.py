"""The optional L3 tier: a tiny shared content-addressed cache server.

A fleet of planner/server processes (``repro report --jobs N`` on many
machines, several ``repro serve`` workers) warms each other through one
:class:`CacheServer`: the first process to compile a plan publishes its
content-addressed document, every later process fetches it instead of
compiling.  The wire format is the same JSON-lines idiom the serving
CLI already speaks -- one request object per line, one response object
per line, over a plain TCP socket:

* ``{"op": "get",  "key": K, "schema": V}`` ->
  ``{"ok": true, "hit": true, "value": TEXT}`` or
  ``{"ok": true, "hit": false}``
* ``{"op": "put",  "key": K, "value": TEXT, "schema": V}`` ->
  ``{"ok": true, "stored": true}``
* ``{"op": "stat", "schema": V}`` ->
  ``{"ok": true, "entries": N, "bytes": N, "hits": N, "misses": N,
  "evictions": N}``
* ``{"op": "metrics", "schema": V}`` ->
  ``{"ok": true, "exposition": TEXT}`` -- the same counters as
  Prometheus text exposition under ``repro.cache.server.*``
  (rendered by :mod:`repro.obs.export`; what ``repro metrics
  --remote`` prints).

Values are opaque text (the callers store the exact on-disk cache
documents, schema version and full content key included); keys are the
same digests that name ``plans/<digest>.json``.  A ``schema`` mismatch
is *refused* on every operation -- a cross-version fleet degrades to
cache misses, never to misread entries -- and the store itself is a
bounded :class:`~repro.cache.lru.LRUCache`, so the server's memory is
capped by entries and bytes with LRU eviction.

:class:`RemoteTier` is the client side: best-effort by design.  Every
transport failure (server gone, timeout, garbage response) turns into a
miss and an error counter tick; the planning path never fails because
the cache fleet did.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading

from ..errors import ConfigError
from ..obs.export import render_prometheus
from ..obs.metrics import MetricsRegistry
from .lru import LRUCache

#: on-wire schema of the remote-tier protocol *and* the cached
#: documents; bumped together with the workspace's on-disk format.
CACHE_SCHEMA_VERSION = 1

#: default client-side socket timeout: a wedged cache server must cost
#: a bounded stall, after which the tier degrades to misses.
DEFAULT_TIMEOUT_S = 5.0

#: refuse absurd single lines instead of buffering them (64 MiB).
MAX_LINE_BYTES = 64 * 1024 * 1024


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` into a connectable pair.

    Raises:
        ConfigError: for a malformed address.
    """
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"remote cache address {address!r} is not of the form "
            f"'host:port'"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigError(
            f"remote cache address {address!r} has a non-integer port"
        ) from None


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: JSON-lines requests until EOF."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        server: CacheServer = self.server  # type: ignore[assignment]
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES)
            except OSError:
                return
            if not line:
                return
            response = server.handle_line(line)
            try:
                self.wfile.write(
                    json.dumps(response).encode("utf-8") + b"\n"
                )
            except OSError:
                return


class CacheServer(socketserver.ThreadingTCPServer):
    """A bounded, content-addressed, shared cache over a TCP socket.

    Args:
        host: bind address (default loopback).
        port: bind port (0 picks a free one; see :attr:`address`).
        max_entries: LRU entry bound of the in-memory store.
        max_bytes: LRU approximate-byte bound of the store.
        schema: protocol/document schema version served; requests
            carrying any other version are refused.

    Use either :meth:`start` (background thread, for tests and
    embedding) or :meth:`serve_forever` (blocking, what ``repro cache
    serve`` runs); :meth:`close` stops and releases the socket.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_entries: int = 4096,
        max_bytes: int | None = 256 * 1024 * 1024,
        schema: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.schema = schema
        self.store = LRUCache(max_entries, max_bytes)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        """The connectable ``host:port`` (with the bound port resolved)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"

    def handle_line(self, line: bytes) -> dict:
        """One request line -> one response object (exposed for tests)."""
        try:
            request = json.loads(line)
        except ValueError:
            return {"ok": False, "error": "invalid JSON request"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "expected a JSON object"}
        if request.get("schema") != self.schema:
            return {
                "ok": False,
                "error": (
                    f"schema {request.get('schema')!r} refused; this "
                    f"server speaks schema {self.schema}"
                ),
            }
        op = request.get("op")
        if op == "get":
            key = request.get("key")
            if not isinstance(key, str):
                return {"ok": False, "error": "get lacks a string 'key'"}
            value = self.store.get(key)
            if value is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, "value": value}
        if op == "put":
            key, value = request.get("key"), request.get("value")
            if not isinstance(key, str) or not isinstance(value, str):
                return {
                    "ok": False,
                    "error": "put lacks string 'key'/'value'",
                }
            self.store.put(key, value, size=len(value))
            return {"ok": True, "stored": True}
        if op == "stat":
            stats = self.store.stats
            return {
                "ok": True,
                "entries": stats.entries,
                "bytes": stats.bytes,
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
            }
        if op == "metrics":
            return {"ok": True, "exposition": self.exposition()}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def exposition(self) -> str:
        """The server's own counters as Prometheus text exposition.

        The same numbers ``stat`` returns, under the
        ``repro.cache.server.*`` namespace (exact, scrape-ready).
        """
        stats = self.store.stats
        registry = MetricsRegistry()
        for name, value in (
            ("hits", stats.hits),
            ("misses", stats.misses),
            ("evictions", stats.evictions),
        ):
            registry.counter(f"repro.cache.server.{name}").inc(value)
        for name, value in (
            ("entries", stats.entries),
            ("bytes", stats.bytes),
        ):
            registry.gauge(f"repro.cache.server.{name}").set(value)
        return render_prometheus(registry.snapshot())

    def start(self) -> str:
        """Serve on a daemon thread; returns the connectable address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name="repro-cache-server",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            # shutdown() waits on serve_forever(); it deadlocks when the
            # serving loop was never started (direct handle_line users).
            self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class RemoteTier:
    """Client handle on one :class:`CacheServer` (or a compatible peer).

    Thread-safe: one persistent connection guarded by a lock, lazily
    opened and re-opened once per call after a failure.  Every
    operational failure degrades to a miss (get), a no-op (put) or None
    (stat) -- the planning path must never fail because the shared tier
    did.  The caller counts those degradations through the returned
    outcomes (None/False), keeping tier counters exact.

    Args:
        address: the server's ``host:port``.
        schema: schema version stamped on every request.
        timeout_s: per-operation socket timeout.
        retries: reconnect attempts after the first failure of a call
            (the historical behavior is 1: retry once on a fresh
            connection, then degrade).
        backoff: delay policy between those attempts -- the same
            :class:`~repro.serve.protocol.Backoff` the serving-tier
            :class:`~repro.serve.NetClient` uses (default: short jittered
            delays capped at 200 ms, sized for a cache that must degrade
            fast).  Inject one with a recording ``sleep`` for
            deterministic tests.

    Raises:
        ConfigError: for a malformed address or negative ``retries``.
    """

    def __init__(
        self,
        address: str,
        *,
        schema: int = CACHE_SCHEMA_VERSION,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = 1,
        backoff=None,
    ) -> None:
        self.address = address
        self._host, self._port = parse_address(address)
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.schema = schema
        self.timeout_s = timeout_s
        self._retries = retries
        if backoff is None:
            from ..serve.protocol import Backoff

            backoff = Backoff(base_ms=10.0, max_ms=200.0)
        self._backoff = backoff
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self.timeout_s
        )
        self._sock = sock
        self._file = sock.makefile("rb")

    def _drop(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close race
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close race
                pass
        self._sock = None
        self._file = None

    def _roundtrip(self, request: dict) -> dict | None:
        """Send one request, read one response; None on any failure.

        Retries on a fresh connection up to the retry budget, waiting a
        backoff-with-jitter delay between attempts so a restarting
        server is not hammered in lockstep by every client; exhausted
        budgets degrade to None (a miss), never an exception.
        """
        payload = json.dumps(request).encode("utf-8") + b"\n"
        with self._lock:
            for attempt in range(self._retries + 1):
                try:
                    if self._sock is None:
                        self._connect()
                    self._sock.sendall(payload)
                    line = self._file.readline(MAX_LINE_BYTES)
                    if not line:
                        raise OSError("server closed the connection")
                    response = json.loads(line)
                    if not isinstance(response, dict):
                        raise ValueError("non-object response")
                    return response
                except (OSError, ValueError):
                    self._drop()
                    if attempt >= self._retries:
                        return None
                    self._backoff.wait(attempt)
        return None  # pragma: no cover - loop always returns

    def get(self, key: str) -> str | None:
        """The cached text for ``key``; None on miss *or* any failure."""
        response = self._roundtrip(
            {"op": "get", "key": key, "schema": self.schema}
        )
        if response is None or not response.get("ok"):
            return None
        if not response.get("hit"):
            return None
        value = response.get("value")
        return value if isinstance(value, str) else None

    def put(self, key: str, value: str) -> bool:
        """Publish ``key``; False when refused or unreachable."""
        response = self._roundtrip(
            {"op": "put", "key": key, "value": value, "schema": self.schema}
        )
        return bool(response and response.get("ok"))

    def stat(self) -> dict | None:
        """The server's occupancy/counter snapshot; None when unreachable."""
        response = self._roundtrip({"op": "stat", "schema": self.schema})
        if response is None or not response.get("ok"):
            return None
        return response

    def metrics(self) -> str | None:
        """The server's Prometheus exposition; None when unreachable."""
        response = self._roundtrip({"op": "metrics", "schema": self.schema})
        if response is None or not response.get("ok"):
            return None
        exposition = response.get("exposition")
        return exposition if isinstance(exposition, str) else None

    def close(self) -> None:
        """Drop the connection (the tier reconnects on next use)."""
        with self._lock:
            self._drop()
