"""Exact per-tier counters for the tiered plan/profile cache.

Follows the library's counters-not-logs convention
(:class:`~repro.planner.store.StoreStats`,
:class:`~repro.serve.stats.ServiceStats`): every number is exact, so
tests assert "the warm process answered every plan fetch from the
shared tier" instead of eyeballing hit rates.

One :class:`TierStats` describes one tier (L1 memory, L2 disk, L3
remote); a :class:`CacheStats` bundles the plan-cache tiers plus the
profile store's remote-tier traffic.  Both subtract for the report
runner's ``since`` windowing -- counters as deltas, gauges (``entries``,
``bytes``) carried from the newer snapshot, since occupancy is a level,
not a rate.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TierStats:
    """Snapshot of one cache tier's counters.

    Attributes:
        hits: lookups answered by this tier.
        misses: lookups that fell through to the next tier (or to a
            compile).
        fills: entries written into this tier from a *lower* tier's hit
            (read-through fill propagating back up).
        writes: entries written into this tier from a fresh computation
            (write-through on a cache miss).
        evictions: entries dropped to stay within the tier's bounds.
        errors: lookups or writes that failed operationally (socket
            errors, undecodable remote documents); always degrade to a
            miss, never to a wrong answer.
        entries: current entry count (gauge, not a counter).
        bytes: current approximate occupancy in bytes (gauge).
    """

    hits: int = 0
    misses: int = 0
    fills: int = 0
    writes: int = 0
    evictions: int = 0
    errors: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def lookups(self) -> int:
        """All lookups this tier saw (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered here (1.0 when never asked)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups

    def __sub__(self, other: "TierStats") -> "TierStats":
        """Counter delta (``after - before``); gauges come from ``self``.

        ``entries``/``bytes`` describe current occupancy, so the newer
        snapshot's levels are carried instead of subtracted.
        """
        return TierStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            fills=self.fills - other.fills,
            writes=self.writes - other.writes,
            evictions=self.evictions - other.evictions,
            errors=self.errors - other.errors,
            entries=self.entries,
            bytes=self.bytes,
        )


@dataclass(frozen=True)
class CacheStats:
    """Per-tier counters of one workspace's tiered cache.

    Attributes:
        l1: the in-memory plan LRU (per process).
        l2: the on-disk plan cache (``plans/<digest>.json``).
        l3: the shared remote plan tier (zeroes when not configured).
        profiles_remote: the profile store's traffic against the same
            remote tier, counted separately so plan-tier hit rates stay
            directly assertable.
    """

    l1: TierStats = TierStats()
    l2: TierStats = TierStats()
    l3: TierStats = TierStats()
    profiles_remote: TierStats = TierStats()

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        """Tier-by-tier counter delta between two snapshots."""
        return CacheStats(
            l1=self.l1 - other.l1,
            l2=self.l2 - other.l2,
            l3=self.l3 - other.l3,
            profiles_remote=self.profiles_remote - other.profiles_remote,
        )
