"""Run the artifact manifest through one Workspace, with exact counters.

:func:`run_report` resolves each selected :class:`Artifact`'s producer,
calls it against a single shared :class:`~repro.api.workspace.Workspace`
(so profiling deduplicates and every plan lands in the session caches),
and wraps each result with its wall time and the windowed workspace
counters -- "table 5 fitted 14 profiles and compiled 216 plans" is
recorded, not guessed.  :func:`write_outputs` persists the collected
files under a results directory.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from ..api.workspace import Workspace, WorkspaceStats
from ..errors import ConfigError
from .manifest import (
    Artifact,
    ArtifactResult,
    ReportConfig,
    select_artifacts,
)


@dataclass(frozen=True)
class ArtifactRun:
    """One artifact's execution record inside a report run.

    Attributes:
        artifact: the manifest entry that ran.
        result: the producer's output files and assertion data.
        wall_s: producer wall time in seconds.
        stats: workspace counters windowed to this artifact
            (profiles fitted, plans compiled, degree solves, ...).
    """

    artifact: Artifact
    result: ArtifactResult
    wall_s: float
    stats: WorkspaceStats


@dataclass(frozen=True)
class ReportRun:
    """Everything one ``repro report`` invocation computed.

    Attributes:
        config: the shared producer configuration.
        runs: per-artifact records, in execution order.
        wall_s: total wall time across all producers.
        stats: workspace counters windowed to the whole run.
    """

    config: ReportConfig
    runs: tuple[ArtifactRun, ...]
    wall_s: float
    stats: WorkspaceStats

    def outputs(self) -> dict[str, str]:
        """All produced files across the run, by filename.

        Filenames are unique by construction: :func:`run_report`
        refuses to build a run in which two artifacts produce the same
        file.
        """
        return {
            filename: text
            for run in self.runs
            for filename, text in run.result.outputs.items()
        }


def _validate(artifact: Artifact, result: ArtifactResult) -> None:
    """Producer output must match the manifest's declared files.

    A non-deterministic artifact may omit declared files (the perf
    benchmarks skip their committed JSON baselines in smoke mode), but
    nothing may produce a file the manifest does not declare -- an
    undeclared file would silently escape ``--check``.
    """
    declared = set(artifact.outputs)
    produced = set(result.outputs)
    extra = produced - declared
    if extra:
        raise ConfigError(
            f"artifact {artifact.name!r} produced undeclared file(s) "
            f"{sorted(extra)}; declared outputs are "
            f"{sorted(declared)}"
        )
    missing = declared - produced
    if missing and artifact.deterministic:
        raise ConfigError(
            f"artifact {artifact.name!r} did not produce declared "
            f"file(s) {sorted(missing)}"
        )


def _run_one(
    artifact: Artifact,
    producer: Callable,
    workspace: Workspace,
    config: ReportConfig,
    parent=None,
) -> ArtifactRun:
    """Execute one producer and window the workspace counters around it.

    Counter windows are snapshot deltas: under ``jobs > 1`` a window may
    also include work concurrent artifacts did inside it (a superset,
    never a torn read -- every snapshot is taken under the stores'
    locks).  The whole-run window is exact either way.

    When the workspace traces, the producer runs inside an ``artifact``
    span (parented onto the run's ``report`` span) and the recorded
    wall time *is* that span's duration -- the timing lines in
    ``REPORT.md`` then come from the tracer.
    """
    tracer = workspace.tracer
    span = (
        tracer.start("artifact", {"name": artifact.name}, parent=parent)
        if tracer is not None
        else None
    )
    before = workspace.stats
    start = time.perf_counter()
    try:
        result = producer(workspace, config)
    finally:
        stats = workspace.stats.since(before)
        if span is not None:
            record = span.set(
                profiles_fitted=stats.profiles.misses,
                plans_compiled=stats.plan_misses,
            ).end()
            wall_s = record.duration_us / 1e6
        else:
            wall_s = time.perf_counter() - start
    if not isinstance(result, ArtifactResult):
        raise ConfigError(
            f"artifact {artifact.name!r}: producer returned "
            f"{type(result).__name__}, expected ArtifactResult"
        )
    _validate(artifact, result)
    return ArtifactRun(
        artifact=artifact, result=result, wall_s=wall_s, stats=stats
    )


def run_report(
    workspace: Workspace,
    config: ReportConfig | None = None,
    *,
    only: str | Iterable[str] | None = None,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
) -> ReportRun:
    """Produce the selected artifacts through one workspace session.

    Args:
        workspace: the shared session; all profiling and planning runs
            through its caches.
        config: producer knobs; defaults to the environment-derived
            :meth:`ReportConfig.from_env`.
        only: optional manifest subset (``"fig7,table5"`` or a list of
            names); None runs everything.
        progress: optional callback receiving one line per artifact as
            it completes (the CLI prints these).  Always invoked from
            the calling thread, in selection order.
        jobs: producer thread count.  With ``jobs > 1`` the
            parallel-safe artifacts run concurrently through the shared
            workspace (its caches and plan single-flight are
            thread-safe); artifacts marked ``parallel_safe=False`` run
            serially after the pool drains.  The returned ``runs`` are
            always in selection order, so rendering and
            :func:`write_outputs` are order-identical to a serial run.

    Raises:
        RegistryError: for an unknown ``--only`` name.
        ConfigError: for an unresolvable producer, an output-manifest
            mismatch, or ``jobs < 1``.
    """
    if config is None:
        config = ReportConfig.from_env()
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    artifacts = select_artifacts(only)
    # Resolve every producer up front, on this thread: import errors
    # surface deterministically and no import machinery runs inside the
    # pool.
    producers = [artifact.resolve_producer() for artifact in artifacts]
    run_before = workspace.stats
    run_start = time.perf_counter()
    tracer = workspace.tracer
    # Artifact spans parent explicitly onto the report span: producers
    # may run on pool threads, which don't inherit this context.
    report_span = (
        tracer.start("report", {"artifacts": len(artifacts)})
        if tracer is not None
        else None
    )

    records: dict[str, ArtifactRun] = {}
    try:
        if jobs == 1:
            for artifact, producer in zip(artifacts, producers):
                records[artifact.name] = _run_one(
                    artifact, producer, workspace, config, report_span
                )
                _emit_progress(progress, records[artifact.name])
        else:
            pooled = [
                (a, p)
                for a, p in zip(artifacts, producers)
                if a.parallel_safe
            ]
            serial = [
                (a, p)
                for a, p in zip(artifacts, producers)
                if not a.parallel_safe
            ]
            with ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-report"
            ) as pool:
                futures = [
                    (
                        a,
                        pool.submit(
                            _run_one, a, p, workspace, config, report_span
                        ),
                    )
                    for a, p in pooled
                ]
                # Collect in submission order: exceptions propagate
                # deterministically and progress lines stay ordered.
                for artifact, future in futures:
                    records[artifact.name] = future.result()
                    _emit_progress(progress, records[artifact.name])
            for artifact, producer in serial:
                records[artifact.name] = _run_one(
                    artifact, producer, workspace, config, report_span
                )
                _emit_progress(progress, records[artifact.name])
    finally:
        if report_span is not None:
            report_span.end()

    # Assemble in selection order regardless of execution order, then
    # refuse filename collisions: two artifacts producing one file would
    # silently last-write-win in write_outputs and make --check compare
    # two producers against one committed file.
    runs = tuple(records[artifact.name] for artifact in artifacts)
    owner: dict[str, str] = {}
    for record in runs:
        for filename in record.result.outputs:
            if filename in owner:
                raise ConfigError(
                    f"artifacts {owner[filename]!r} and "
                    f"{record.artifact.name!r} both produce {filename!r}"
                )
            owner[filename] = record.artifact.name
    return ReportRun(
        config=config,
        runs=runs,
        wall_s=time.perf_counter() - run_start,
        stats=workspace.stats.since(run_before),
    )


def _emit_progress(
    progress: Callable[[str], None] | None, record: ArtifactRun
) -> None:
    if progress is None:
        return
    progress(
        f"{record.artifact.name}: {len(record.result.outputs)} file(s) in "
        f"{record.wall_s:.1f} s ({record.stats.profiles.misses} profiles "
        f"fitted, {record.stats.plan_misses} plans compiled)"
    )


def write_outputs(run: ReportRun, results_dir: str | Path) -> list[Path]:
    """Write every produced file under ``results_dir``.

    Returns:
        The written paths, in run order.
    """
    results_dir = Path(results_dir).expanduser()
    results_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for run_record in run.runs:
        for filename, text in run_record.result.outputs.items():
            path = results_dir / filename
            path.write_text(text)
            written.append(path)
    return written


def default_results_dir() -> Path | None:
    """The repository's ``benchmarks/results`` directory, if locatable.

    The default artifacts' producers live in the ``benchmarks``
    package; when it is importable, its ``results/`` sibling is where
    the committed artifact files live.  Returns None otherwise (the CLI
    then requires ``--results-dir``).
    """
    try:
        import benchmarks
    except ImportError:
        return None
    package_file = getattr(benchmarks, "__file__", None)
    if package_file is None:  # pragma: no cover - namespace package
        return None
    return Path(package_file).parent / "results"
