"""Paper-artifact report subsystem: manifest, runner, renderer, checker.

``repro report`` regenerates every committed figure/table of the paper
through one :class:`~repro.api.workspace.Workspace`; ``repro report
--check`` re-runs the deterministic subset and fails on byte drift.
See :mod:`repro.report.manifest` for the artifact registry.
"""

from .diff import Drift, check_run, first_difference
from .manifest import (
    DEFAULT_ARTIFACTS,
    Artifact,
    ArtifactResult,
    ReportConfig,
    available_artifacts,
    get_artifact,
    register_artifact,
    select_artifacts,
    unregister_artifact,
)
from .render import render_report
from .runner import (
    ArtifactRun,
    ReportRun,
    default_results_dir,
    run_report,
    write_outputs,
)

__all__ = [
    "Artifact",
    "ArtifactResult",
    "ArtifactRun",
    "DEFAULT_ARTIFACTS",
    "Drift",
    "ReportConfig",
    "ReportRun",
    "available_artifacts",
    "check_run",
    "default_results_dir",
    "first_difference",
    "get_artifact",
    "register_artifact",
    "render_report",
    "run_report",
    "select_artifacts",
    "unregister_artifact",
    "write_outputs",
]
