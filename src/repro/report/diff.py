"""Byte-exact drift detection between a report run and committed files.

``repro report --check`` re-produces the deterministic artifacts and
compares each output against the committed file of the same name --
byte for byte, no normalization.  Any difference (content, a missing
file, even a trailing-newline change) is a :class:`Drift`, and the CLI
exits non-zero if any exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .runner import ReportRun


@dataclass(frozen=True)
class Drift:
    """One detected difference between produced and committed bytes.

    Attributes:
        artifact: which manifest entry produced the file.
        filename: the file's name under the results directory.
        reason: a one-line human explanation (missing file, first
            differing line, size change, ...).
    """

    artifact: str
    filename: str
    reason: str

    def __str__(self) -> str:
        return f"{self.artifact}: {self.filename}: {self.reason}"


def first_difference(expected: str, actual: str) -> str:
    """Locate the first differing line of two texts (for drift messages).

    Returns a one-line summary quoting both versions of the first line
    that differs, or a length-only summary when one text is a prefix of
    the other.
    """
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    for i, (want, got) in enumerate(zip(expected_lines, actual_lines)):
        if want != got:
            return (
                f"first difference at line {i + 1}: "
                f"committed {want!r} != produced {got!r}"
            )
    if len(expected_lines) != len(actual_lines):
        return (
            f"line count differs: committed {len(expected_lines)}, "
            f"produced {len(actual_lines)}"
        )
    # Same lines, different bytes: only line endings / trailing bytes.
    return (
        f"byte-level difference (line endings or trailing bytes): "
        f"committed {len(expected)} bytes, produced {len(actual)} bytes"
    )


def check_run(
    run: ReportRun,
    results_dir: str | Path,
    *,
    include_nondeterministic: bool = False,
) -> list[Drift]:
    """Compare a run's produced files against the committed ones.

    Args:
        run: an executed report run (nothing is written).
        results_dir: the committed results directory to diff against.
        include_nondeterministic: also compare artifacts whose outputs
            embed wall-clock measurements (off by default -- they
            legitimately differ every run).

    Returns:
        All detected drifts, in run order; empty means byte-identical.
    """
    results_dir = Path(results_dir).expanduser()
    drifts: list[Drift] = []
    for record in run.runs:
        if not record.artifact.deterministic and not include_nondeterministic:
            continue
        for filename, produced in record.result.outputs.items():
            path = results_dir / filename
            if not path.exists():
                drifts.append(
                    Drift(
                        artifact=record.artifact.name,
                        filename=filename,
                        reason=(
                            "not committed (run `repro report` and "
                            "commit the results)"
                        ),
                    )
                )
                continue
            # Compare raw bytes: read_text()'s universal-newline mode
            # would hide CRLF drift and betray the byte-for-byte
            # contract.
            committed_bytes = path.read_bytes()
            if committed_bytes != produced.encode():
                committed = committed_bytes.decode("utf-8", "replace")
                drifts.append(
                    Drift(
                        artifact=record.artifact.name,
                        filename=filename,
                        reason=first_difference(committed, produced),
                    )
                )
    return drifts
