"""The artifact manifest: every paper figure/table as a named producer.

Each reproduction artifact (a figure or table of the FSMoE paper, or one
of this repository's own performance baselines) is a registered
:class:`Artifact`: a name, the paper reference it reproduces, a producer
callable and the exact output files it yields under
``benchmarks/results/``.  The producers live in the ``benchmarks``
package -- the same functions the pytest wrappers call -- so ``python -m
repro report`` and ``pytest benchmarks`` regenerate byte-identical
files from one code path.

Artifacts resolve through the same string-registry plumbing as systems,
models and clusters (:class:`~repro.naming.Registry`): third-party
artifacts plug into the manifest with :func:`register_artifact` and are
then addressable from ``repro report --only``.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..errors import ConfigError
from ..naming import Registry


@dataclass(frozen=True)
class ReportConfig:
    """Knobs shared by every artifact producer.

    Attributes:
        full: run the paper-sized grids (all 1458 Table-5
            configurations, full-depth models) instead of the
            subsampled defaults.
        solver: FSMoE Step-2 gradient-partition solver override
            (``"de"``/``"slsqp"``/``"none"``); None picks the
            benchmark default (DE when subsampled, SLSQP on the full
            grids where DE would dominate the wall time).
        smoke: CI smoke mode -- scale the perf benchmarks down and
            enforce their regression floors.
    """

    full: bool = False
    solver: str | None = None
    smoke: bool = False

    @property
    def step2_solver(self) -> str:
        """The FSMoE Step-2 solver the big sweeps should use."""
        if self.solver is not None:
            return self.solver
        return "slsqp" if self.full else "de"

    @classmethod
    def from_env(cls) -> "ReportConfig":
        """The configuration the benchmark env vars describe.

        ``REPRO_BENCH_FULL=1`` selects the full grids,
        ``REPRO_BENCH_SOLVER`` overrides the Step-2 solver and
        ``REPRO_PERF_SMOKE=1`` selects CI smoke mode -- the same
        variables the pytest benchmark suite has always read.
        """
        return cls(
            full=os.environ.get("REPRO_BENCH_FULL", "0") == "1",
            solver=os.environ.get("REPRO_BENCH_SOLVER"),
            smoke=os.environ.get("REPRO_PERF_SMOKE") == "1",
        )


@dataclass(frozen=True)
class ArtifactResult:
    """What one producer yields: output files plus assertion data.

    Attributes:
        artifact: the producing artifact's registered name.
        outputs: exact file contents by filename (the bytes written
            under ``benchmarks/results/``, trailing newline included).
        data: structured values for the pytest wrappers' shape
            assertions (speedups, makespans, fit qualities, ...);
            never serialized.
    """

    artifact: str
    outputs: Mapping[str, str]
    data: Mapping[str, object] = field(default_factory=dict)


#: signature of every producer callable.
Producer = Callable[[object, ReportConfig], ArtifactResult]


@dataclass(frozen=True)
class Artifact:
    """One registered paper artifact.

    Attributes:
        name: registry key (``"fig6"``, ``"table5"``, ...).
        title: one-line human description.
        paper_ref: which figure/table/section of the paper it
            reproduces.
        producer: the callable computing it -- either a dotted
            ``"module:function"`` string resolved lazily (the default
            artifacts point into the ``benchmarks`` package) or a
            callable, with signature
            ``produce(workspace, config) -> ArtifactResult``.
        outputs: the filenames the producer yields, relative to the
            results directory.
        deterministic: True when the output bytes are a pure function
            of the configuration (checked by ``repro report --check``);
            False for artifacts that embed wall-clock measurements.
        parallel_safe: True when the producer only reads and plans
            through the shared workspace (whose caches are
            thread-safe), so ``repro report --jobs N`` may run it
            concurrently with other artifacts.  False for producers
            that mutate process-wide solver state (default-solver
            switches, cache resets, timed cold runs) -- those run
            serially after the pool drains.
    """

    name: str
    title: str
    paper_ref: str
    producer: str | Producer
    outputs: tuple[str, ...]
    deterministic: bool = True
    parallel_safe: bool = True

    def resolve_producer(self) -> Producer:
        """Import (if needed) and return the producer callable.

        Raises:
            ConfigError: when the producer's module is not importable
                (the default artifacts need the ``benchmarks`` package
                on ``sys.path``, i.e. a repository-root working
                directory).
        """
        if callable(self.producer):
            return self.producer
        module_name, _, attr = self.producer.partition(":")
        if not attr:
            raise ConfigError(
                f"artifact {self.name!r}: producer {self.producer!r} is "
                f"not of the form 'module:function'"
            )
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ConfigError(
                f"artifact {self.name!r} imports its producer from "
                f"{module_name!r}, which is not importable: {exc}.  The "
                f"default artifacts live in the repository's "
                f"`benchmarks` package -- run `repro report` from the "
                f"repository root."
            ) from exc
        producer = getattr(module, attr, None)
        if producer is None:
            raise ConfigError(
                f"artifact {self.name!r}: {module_name!r} has no "
                f"attribute {attr!r}"
            )
        return producer


_REGISTRY: Registry[Artifact] = Registry("artifact")


def register_artifact(
    artifact: Artifact,
    *,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
) -> None:
    """Add an artifact to the manifest.

    Raises:
        RegistryError: when the name is taken and ``overwrite`` is
            False.
    """
    _REGISTRY.register(
        artifact.name,
        lambda: artifact,
        aliases=aliases,
        overwrite=overwrite,
    )


def unregister_artifact(name: str) -> None:
    """Remove an artifact registration (mainly for tests)."""
    _REGISTRY.discard(name)


def available_artifacts() -> tuple[str, ...]:
    """Canonical names of every registered artifact, sorted."""
    return _REGISTRY.available()


def get_artifact(name: str) -> Artifact:
    """Look one artifact up by (possibly aliased) name.

    Raises:
        RegistryError: for an unknown name, listing what exists.
    """
    return _REGISTRY.lookup(name)()


def select_artifacts(
    only: str | Iterable[str] | None = None,
) -> tuple[Artifact, ...]:
    """The manifest subset an ``--only`` expression names.

    Args:
        only: None for the whole manifest, a comma-separated string
            (``"fig7,table5"``) or an iterable of names.

    Returns:
        The selected artifacts, in manifest (sorted-name) order for
        None and in the caller's order otherwise.

    Raises:
        RegistryError: for an unknown artifact name.
    """
    if only is None:
        return tuple(get_artifact(name) for name in available_artifacts())
    if isinstance(only, str):
        only = [part.strip() for part in only.split(",") if part.strip()]
    return tuple(get_artifact(name) for name in only)


def _bench(module: str) -> str:
    return f"benchmarks.{module}:produce"


#: the paper's figures and tables plus this repo's perf baselines --
#: one artifact per benchmark module.
DEFAULT_ARTIFACTS: tuple[Artifact, ...] = (
    Artifact(
        name="fig3",
        title="The four backpropagation schedules as ASCII Gantt charts",
        paper_ref="Fig. 3",
        producer=_bench("test_fig3_schedule_gantt"),
        outputs=("fig3_schedules.txt",),
    ),
    Artifact(
        name="fig5",
        title="Performance-model fitting quality on both testbeds",
        paper_ref="Fig. 5, §6.2",
        producer=_bench("test_fig5_perf_models"),
        outputs=("fig5_testbed_A.txt", "fig5_testbed_B.txt"),
    ),
    Artifact(
        name="fig6",
        title="End-to-end speedups over DeepSpeed-MoE on real models",
        paper_ref="Fig. 6, §6.4",
        producer=_bench("test_fig6_e2e_models"),
        outputs=(
            "fig6_GPT2-XL_testbed_A.txt",
            "fig6_Mixtral-7B_testbed_A.txt",
            "fig6_Mixtral-22B_testbed_A.txt",
            "fig6_GPT2-XL_testbed_B.txt",
            "fig6_Mixtral-7B_testbed_B.txt",
        ),
    ),
    Artifact(
        name="fig7",
        title="Robustness to sequence length (L) and world size (P)",
        paper_ref="Fig. 7, §6.4",
        producer=_bench("test_fig7_varied_L_P"),
        outputs=("fig7_varied_L.txt", "fig7_varied_P.txt"),
    ),
    Artifact(
        name="fig8",
        title="Speedups with pipeline parallelism enabled (GPipe, N_PP=2)",
        paper_ref="Fig. 8, §6.4",
        producer=_bench("test_fig8_pipeline_parallel"),
        outputs=("fig8_pp.txt",),
    ),
    Artifact(
        name="table2",
        title="Per-operation time breakdown of one MoE layer",
        paper_ref="Table 2, §2.3",
        producer=_bench("test_table2_breakdown"),
        outputs=("table2_testbed_A.txt", "table2_testbed_B.txt"),
    ),
    Artifact(
        name="table5",
        title="Geo-mean speedups over Tutel on the Table-4 grid",
        paper_ref="Table 5, §6.3",
        producer=_bench("test_table5_configured_layers"),
        outputs=("table5_testbed_A.txt", "table5_testbed_B.txt"),
    ),
    Artifact(
        name="table6",
        title="Four gating functions on GPT2-XL, Testbed B",
        paper_ref="Table 6, §6.5",
        producer=_bench("test_table6_gating"),
        outputs=("table6_gating.txt",),
    ),
    Artifact(
        name="a2a-algorithms",
        title="AlltoAll algorithm crossover vs message size",
        paper_ref="§3.1 ablation",
        producer=_bench("test_ablation_a2a_algorithms"),
        outputs=(
            "ablation_a2a_algorithms_A.txt",
            "ablation_a2a_algorithms_B.txt",
        ),
    ),
    Artifact(
        name="fw-bw-degree",
        title="Fraction of configs whose fw and bw degrees differ",
        paper_ref="§4.4 ablation",
        producer=_bench("test_ablation_fw_bw_degree"),
        outputs=("ablation_fw_bw_degree.txt",),
    ),
    Artifact(
        name="gradient-partition",
        title="Gradient-aggregation strategies inside the 3-stream schedule",
        paper_ref="§5 ablation",
        producer=_bench("test_ablation_gradient_partition"),
        outputs=("ablation_gradient_partition.txt",),
    ),
    Artifact(
        name="slsqp-vs-oracle",
        title="Algorithm 1's SLSQP search vs the integer-sweep oracle",
        paper_ref="§4 ablation",
        producer=_bench("test_ablation_slsqp_vs_oracle"),
        outputs=("ablation_slsqp_vs_oracle.txt",),
        deterministic=False,  # reports measured solve times
        parallel_safe=False,  # switches the default degree solver
    ),
    Artifact(
        name="perf-planner",
        title="Cold-planning wall time: batched Algorithm 1 vs SLSQP",
        paper_ref="repo baseline (BENCH_planner)",
        producer=_bench("test_perf_cold_plan"),
        outputs=("perf_cold_plan.txt", "BENCH_planner.json"),
        deterministic=False,
        parallel_safe=False,  # resets solver caches for cold timings
    ),
    Artifact(
        name="perf-step2",
        title="Step-2 partition solver: batched vs scalar objective",
        paper_ref="repo baseline (BENCH_planner step2 series)",
        producer=_bench("test_perf_step2"),
        outputs=("perf_step2.txt",),
        deterministic=False,
        parallel_safe=False,  # windows the process-wide solver counters
    ),
    Artifact(
        name="perf-serve",
        title="Coalescing PlanService throughput vs serial plan() loops",
        paper_ref="repo baseline (BENCH_serve)",
        producer=_bench("test_perf_serve"),
        outputs=("perf_serve.txt", "BENCH_serve.json"),
        deterministic=False,
        parallel_safe=False,  # resets solver caches for cold timings
    ),
    Artifact(
        name="perf-netserve",
        title="Network plan serving: open-loop wire latency and shed rate",
        paper_ref="repo baseline (BENCH_netserve)",
        producer=_bench("test_perf_netserve"),
        outputs=("perf_netserve.txt", "BENCH_netserve.json"),
        deterministic=False,
        parallel_safe=False,  # binds a TCP server; latency under load
    ),
    Artifact(
        name="perf-cache",
        title="Tiered cache: L1 vs disk lookups, cross-process L3 hits",
        paper_ref="repo baseline (BENCH_cache)",
        producer=_bench("test_perf_cache"),
        outputs=("perf_cache.txt", "BENCH_cache.json"),
        deterministic=False,
        parallel_safe=False,  # spawns subprocess fleets + a cache server
    ),
    Artifact(
        name="perf-obs",
        title="Tracing overhead: traced vs untraced warm sweeps",
        paper_ref="repo baseline (BENCH_obs)",
        producer=_bench("test_perf_obs"),
        outputs=("perf_obs.txt", "BENCH_obs.json"),
        deterministic=False,
        parallel_safe=False,  # wall-clock ratios; contention would skew
    ),
)

for _artifact in DEFAULT_ARTIFACTS:
    register_artifact(_artifact)
