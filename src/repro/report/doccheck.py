"""Docstring-coverage gate over the public ``repro`` API.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so
it cannot be fooled by import-time side effects), counts the public
surface -- module docstrings, public classes, public functions and
methods -- and computes the fraction that carry a docstring.  CI runs
``python -m repro.report.doccheck``: it fails when coverage drops below
the committed baseline, so an undocumented public API cannot land
silently.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path

#: the gate: measured coverage at the time this gate landed was 100%;
#: a small margin keeps unrelated one-liner churn from tripping CI.
BASELINE_COVERAGE = 0.98


@dataclass
class CoverageReport:
    """Public-API docstring census for one source tree.

    Attributes:
        total: public definitions found (modules, classes, functions).
        documented: how many of them have a docstring.
        missing: dotted names of the undocumented ones.
    """

    total: int = 0
    documented: int = 0
    missing: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Documented fraction (1.0 for an empty tree)."""
        if self.total == 0:
            return 1.0
        return self.documented / self.total

    def count(self, name: str, has_doc: bool) -> None:
        """Record one public definition."""
        self.total += 1
        if has_doc:
            self.documented += 1
        else:
            self.missing.append(name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _scan_body(
    body: list[ast.stmt], prefix: str, report: CoverageReport
) -> None:
    """Census the public defs directly inside a module or class body."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                report.count(
                    f"{prefix}.{node.name}",
                    ast.get_docstring(node) is not None,
                )
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            qualified = f"{prefix}.{node.name}"
            report.count(qualified, ast.get_docstring(node) is not None)
            _scan_body(node.body, qualified, report)


def scan_tree(root: str | Path) -> CoverageReport:
    """Docstring census of every ``*.py`` file under ``root``.

    Modules whose own name is private (``_internal.py``) are skipped
    entirely; ``__init__.py`` counts as its package's module.
    """
    root = Path(root)
    report = CoverageReport()
    for path in sorted(root.rglob("*.py")):
        stem = path.stem
        if stem != "__init__" and not _is_public(stem):
            continue
        module = ".".join(
            part
            for part in path.relative_to(root.parent).with_suffix("").parts
            if part != "__init__"
        )
        tree = ast.parse(path.read_text())
        report.count(module, ast.get_docstring(tree) is not None)
        _scan_body(tree.body, module, report)
    return report


def default_root() -> Path:
    """The installed/source ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    """Entry point for the CI gate; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.report.doccheck",
        description="fail when public-API docstring coverage drops",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="package directory to scan (default: the repro package)",
    )
    parser.add_argument(
        "--min",
        type=float,
        default=BASELINE_COVERAGE,
        dest="minimum",
        help=f"required coverage fraction (default {BASELINE_COVERAGE})",
    )
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else default_root()
    report = scan_tree(root)
    print(
        f"docstring coverage: {report.documented}/{report.total} public "
        f"definitions ({100.0 * report.coverage:.1f}%), required >= "
        f"{100.0 * args.minimum:.1f}%"
    )
    if report.coverage < args.minimum:
        for name in report.missing:
            print(f"missing docstring: {name}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
