"""Generate ``docs/CLI.md`` from the argparse parser itself.

The CLI reference is *rendered from* :func:`repro.api.cli.build_parser`
-- every flag, default and help string in the page is the one argparse
would print -- so the documentation cannot drift from the
implementation.  ``python -m repro docs`` writes the page;
``python -m repro docs --check`` (and the tier-1 docs test) fails when
the committed page differs from a fresh render.
"""

from __future__ import annotations

import argparse
import os
from contextlib import contextmanager

#: argparse wraps help to the terminal width; pin it for byte-stable
#: output regardless of where the generator runs.
_RENDER_COLUMNS = "80"

_HEADER = """\
# `python -m repro` — CLI reference

**This page is generated.**  Regenerate it with `python -m repro docs`
(CI and the tier-1 suite check that it matches the parser exactly) —
do not edit by hand.

Every subcommand below is `python -m repro <subcommand> ...`; an
installed package also exposes the `repro` console script.
"""


@contextmanager
def _pinned_width():
    previous = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = _RENDER_COLUMNS
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = previous


def _subparsers(
    parser: argparse.ArgumentParser,
) -> dict[str, argparse.ArgumentParser]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def render_cli_markdown() -> str:
    """The full ``docs/CLI.md`` document, rendered from argparse."""
    from ..api.cli import build_parser

    with _pinned_width():
        parser = build_parser()
        sections = [_HEADER]
        sections.append("## Top level\n\n```text\n"
                        + parser.format_help().rstrip("\n") + "\n```\n")
        for name, sub in _subparsers(parser).items():
            sections.append(
                f"## `{name}`\n\n```text\n"
                + sub.format_help().rstrip("\n")
                + "\n```\n"
            )
    return "\n".join(sections)
