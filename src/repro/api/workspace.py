"""Disk-rooted experiment sessions: profile + plan caches that survive.

A :class:`Workspace` is the library's front door.  It owns

* a **persistent** :class:`~repro.planner.store.ProfileStore` -- every
  cluster and layer profile fitted through the workspace is written to
  ``<root>/profiles.json`` (versioned, atomic writes, corruption
  tolerated by quarantining the bad file) and preloaded on the next
  open, so a second process re-fits nothing;
* a **content-addressed plan cache** -- every compiled
  :class:`~repro.planner.plan.IterationPlan` lands in
  ``<root>/plans/<digest>.json``, keyed on the full plan identity
  (cluster, layout, stack, gates, system fingerprint, profiler knobs),
  so a warm re-run of any sweep compiles zero plans and replays each one
  bit-identically.

Both caches expose exact hit/miss counters (:attr:`Workspace.stats`):
"this re-run fitted zero new profiles and compiled zero new plans" is an
assertion, not a hope.

Lookups route through a tier stack (:mod:`repro.cache`): **L1**, a
per-process in-memory LRU bounded by entries and approximate bytes;
**L2**, the on-disk layout below (format unchanged); and optionally
**L3**, a shared remote cache server (``REPRO_CACHE_REMOTE=host:port``
or the ``remote=`` constructor argument), so a fleet of processes warms
each other.  Misses fall through tier by tier, hits fill the tiers
above (read-through), fresh compiles write through, and every movement
is counted per tier in :attr:`WorkspaceStats.cache`.

On-disk layout::

    <root>/
      profiles.json          # schema_version + exported ProfileStore
      plans/
        <digest>.json        # schema_version + key + serialized plan

Schema-version mismatches are *refused* (a newer library must not
silently misread an older cache -- run ``python -m repro cache clear``);
truncated or otherwise unparsable files are *recovered from* (renamed to
``*.corrupt`` and treated as empty).
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..bench.runner import ConfigResult
from ..cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    CacheStats,
    LRUCache,
    RemoteTier,
    TierStats,
)
from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.fastsolve import SolverStats, solver_stats
from ..core.pipeline_degree import DEFAULT_MAX_DEGREE
from ..errors import ConfigError, WorkspaceError
from ..locking import FileLock
from ..moe.gates import GateKind
from ..obs.trace import Tracer
from ..parallel.topology import ClusterSpec
from ..planner.batch import PlanPoint
from ..planner.compiler import PlanCompiler
from ..planner.plan import IterationPlan
from ..planner.store import ProfileStore, StoreStats
from ..systems.base import TrainingSystem
from .codec import canonical_json, decode, digest, encode
from .spec import ExperimentSpec

if TYPE_CHECKING:  # imported lazily at runtime: serve sits above api
    from ..serve.stats import ServiceStats

#: current on-disk format of profiles.json and plans/*.json.
WORKSPACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WorkspaceStats:
    """Cache counters for one workspace session.

    Attributes:
        profiles: the profile store's hit/miss counters.
        plan_hits: plan requests served from cache (disk or session).
        plan_misses: plans actually compiled this session.
        solver: the batched Algorithm-1 solver's counters (solves,
            cache hits, batch calls/sizes).  Process-wide, not
            per-workspace: the degree-solution memo is shared by every
            session in the process.
        service: counters of the :class:`~repro.serve.PlanService`
            bound to this workspace (None when no service is serving
            from it).
        cache: exact per-tier counters (L1 memory / L2 disk / L3
            remote, plus the profile store's remote traffic) behind the
            ``plan_hits``/``plan_misses`` totals above.
    """

    profiles: StoreStats
    plan_hits: int = 0
    plan_misses: int = 0
    solver: SolverStats = SolverStats()
    service: "ServiceStats | None" = None
    cache: CacheStats = CacheStats()

    @property
    def warm(self) -> bool:
        """True when this session computed nothing new at all."""
        return self.profiles.misses == 0 and self.plan_misses == 0

    def since(self, earlier: "WorkspaceStats") -> "WorkspaceStats":
        """Counter delta between two snapshots of one session.

        The report runner snapshots :attr:`Workspace.stats` around each
        artifact and attributes the windowed counters (profiles fitted,
        plans compiled, degree solves) to it.  ``service`` is carried
        from the later snapshot: service counters are cumulative
        per-service, not windowable here.
        """
        return WorkspaceStats(
            profiles=self.profiles - earlier.profiles,
            plan_hits=self.plan_hits - earlier.plan_hits,
            plan_misses=self.plan_misses - earlier.plan_misses,
            solver=self.solver - earlier.solver,
            service=self.service,
            cache=self.cache - earlier.cache,
        )


@dataclass(frozen=True)
class ExperimentResult:
    """All planned points of one :meth:`Workspace.sweep`, in grid order.

    Grid order is ``clusters`` (outer) x ``stacks`` x ``systems``
    (inner), matching :func:`~repro.planner.batch.plan_many`.
    """

    spec: ExperimentSpec
    points: tuple[PlanPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def rows(self) -> list[dict[str, object]]:
        """Tidy table: one flat dict per planned point."""
        return [point.row() for point in self.points]

    def config_results(self) -> list[ConfigResult]:
        """One :class:`~repro.bench.runner.ConfigResult` per
        (cluster, stack) case, in grid order.

        Bridges declarative sweeps into the existing reporting helpers
        (:func:`~repro.bench.runner.speedups_over`, ...).
        """
        cases: dict[tuple, ConfigResult] = {}
        order: list[tuple] = []
        for point in self.points:
            key = (point.cluster, point.stack)
            if key not in cases:
                cases[key] = ConfigResult(
                    spec=point.stack[0],
                    parallel=point.parallel,
                    times_ms={},
                )
                order.append(key)
            cases[key].times_ms[point.system_name] = point.makespan_ms
        return [cases[key] for key in order]


def _resolve_tracer(
    trace: "Tracer | str | Path | bool | None", root: Path
) -> Tracer | None:
    """Resolve the ``Workspace(trace=...)`` argument to a tracer.

    ``None`` consults ``REPRO_TRACE`` (unset/empty = off, ``"1"`` = a
    trace file at ``<root>/trace.jsonl``, anything else = that trace
    file path); ``False`` forces tracing off regardless of the
    environment; ``True`` makes a buffer-only tracer; a string or path
    makes a tracer appending to that JSON-lines file; an existing
    :class:`~repro.obs.Tracer` is shared as-is (how the report runner
    shares one tracer across workspaces).
    """
    if isinstance(trace, Tracer):
        return trace
    if trace is None:
        trace = os.environ.get("REPRO_TRACE", "")
    if trace is False or trace == "":
        return None
    if trace is True:
        return Tracer()
    if trace == "1":
        return Tracer(root / "trace.jsonl")
    return Tracer(trace)


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file)."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _quarantine(path: Path) -> None:
    """Move an unreadable cache file aside instead of deleting evidence."""
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - racing cleaners
        pass
    warnings.warn(
        f"workspace cache file {path} was unreadable; "
        f"moved to {target.name} and starting fresh",
        stacklevel=3,
    )


class _TierCounters:
    """One tier's mutable counter cell (guarded by the counter lock)."""

    __slots__ = ("hits", "misses", "fills", "writes", "errors")

    def __init__(self) -> None:
        self.hits = self.misses = self.fills = self.writes = 0
        self.errors = 0

    def reset(self) -> None:
        """Zero every counter (workspace ``clear``)."""
        self.__init__()

    def snapshot(self) -> TierStats:
        """Freeze the current counts into a :class:`TierStats`."""
        return TierStats(
            hits=self.hits,
            misses=self.misses,
            fills=self.fills,
            writes=self.writes,
            errors=self.errors,
        )


class Workspace:
    """A disk-rooted session over the planner: open, plan, re-run warm.

    Args:
        root: directory holding the caches (created if missing).
        autosave: persist new profiles after each cache-missing
            :meth:`plan` call (sweeps batch the save regardless).
        lock_timeout_s: bound on waiting for another *process*'s
            advisory lock (profile saves, in-flight plan compiles).
        l1_entries: entry bound of the in-memory plan tier; ``0``
            disables L1 entirely (every lookup goes to disk), None
            means the default bound.
        l1_bytes: approximate byte bound of the in-memory plan tier
            (None means the default bound).
        remote: ``host:port`` of a shared L3
            :class:`~repro.cache.CacheServer`; None consults the
            ``REPRO_CACHE_REMOTE`` environment variable, and an empty
            string disables the tier explicitly.  The remote tier is
            best-effort -- an unreachable server degrades every lookup
            to a miss, it never fails a plan.
        trace: structured tracing (off by default, and zero-cost when
            off: the hot paths hold ``None`` and allocate nothing).
            None consults the ``REPRO_TRACE`` environment variable
            (unset/empty = off, ``"1"`` = a trace file at
            ``<root>/trace.jsonl``, anything else = a JSON-lines trace
            file path); ``True`` enables an in-memory tracer, a path
            enables a trace file, an existing
            :class:`~repro.obs.Tracer` is shared as-is, and ``False``
            forces tracing off.  See :attr:`tracer` and
            ``docs/OBSERVABILITY.md``.

    Concurrent processes may share one root: profile saves merge with
    the on-disk entries under an advisory file lock
    (``<root>/.workspace.lock``) instead of overwriting each other, and
    plan compiles single-flight across processes through per-digest
    locks (``plans/<digest>.lock``) -- the second process blocks briefly
    and then loads the first one's plan from disk.

    Raises:
        WorkspaceError: when an existing cache was written by a
            different schema version (refused, never misread).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        autosave: bool = True,
        lock_timeout_s: float = 600.0,
        l1_entries: int | None = None,
        l1_bytes: int | None = None,
        remote: str | None = None,
        trace: "Tracer | str | Path | bool | None" = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.plans_dir = self.root / "plans"
        self.plans_dir.mkdir(parents=True, exist_ok=True)
        self._autosave = autosave
        self._lock_timeout_s = lock_timeout_s
        self._io_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._plan_futures: dict[str, Future] = {}
        self._plan_hits = 0
        self._plan_misses = 0
        self._defer_save = False
        self._service_stats: Callable[[], "ServiceStats"] | None = None
        if l1_entries is None:
            l1_entries = DEFAULT_MAX_ENTRIES
        if l1_bytes is None:
            l1_bytes = DEFAULT_MAX_BYTES
        self._l1: LRUCache | None = (
            LRUCache(l1_entries, l1_bytes) if l1_entries > 0 else None
        )
        if remote is None:
            remote = os.environ.get("REPRO_CACHE_REMOTE", "")
        self._remote: RemoteTier | None = (
            RemoteTier(remote) if remote else None
        )
        self._tracer: Tracer | None = _resolve_tracer(trace, self.root)
        self._l1c = _TierCounters()  # fills/writes only; rest from LRU
        self._l2c = _TierCounters()
        self._l3c = _TierCounters()
        self._prc = _TierCounters()  # profile store's remote traffic
        self.store = ProfileStore()
        self._bind_store_remote()
        self._load_profiles()

    # -- persistence ---------------------------------------------------------

    @property
    def profiles_path(self) -> Path:
        """Location of the persisted profile store."""
        return self.root / "profiles.json"

    @staticmethod
    def _decode_entries(data: dict) -> dict[object, object]:
        entries: dict[object, object] = {}
        for entry in data.get("entries", ()):
            try:
                key = decode(entry["k"])
                value = decode(entry["v"])
            except (WorkspaceError, KeyError, TypeError, ValueError):
                # A single undecodable entry (e.g. written by a build with
                # extra registered types) must not poison the rest.
                continue
            entries[key] = value
        return entries

    def _read_profiles_file(self) -> dict | None:
        """Parse ``profiles.json``; quarantine unreadable files.

        Raises:
            WorkspaceError: for a schema-version mismatch.
        """
        path = self.profiles_path
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            _quarantine(path)
            return None
        if not isinstance(data, dict) or "schema_version" not in data:
            _quarantine(path)
            return None
        version = data["schema_version"]
        if version != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"workspace {self.root} was written with schema version "
                f"{version!r}; this build reads version "
                f"{WORKSPACE_SCHEMA_VERSION}.  Run `python -m repro cache "
                f"clear --workspace {self.root}` to discard it."
            )
        return data

    def _load_profiles(self) -> None:
        data = self._read_profiles_file()
        if data is not None:
            self.store.preload(self._decode_entries(data))

    def _bind_store_remote(self) -> None:
        """Route the profile store through the shared tier, if configured."""
        if self._remote is not None:
            self.store.set_remote(
                self._remote_profile_fetch, self._remote_profile_publish
            )

    def _remote_profile_fetch(self, full_key: tuple) -> object | None:
        """Look one profile up in the shared tier (best-effort).

        Counts exactly one ``profiles_remote`` hit or miss; undecodable
        or cross-version documents additionally count an error and are
        refused (treated as a miss), never returned.
        """
        try:
            key_obj = encode(("profile", full_key))
            text = self._remote.get(digest(key_obj))
        except Exception:  # noqa: BLE001 - tier must never raise
            with self._counter_lock:
                self._prc.errors += 1
                self._prc.misses += 1
            return None
        if text is None:
            with self._counter_lock:
                self._prc.misses += 1
            return None
        try:
            data = json.loads(text)
            if data["schema_version"] != WORKSPACE_SCHEMA_VERSION:
                raise ValueError("cross-version remote profile")
            if canonical_json(data["key"]) != canonical_json(key_obj):
                raise ValueError("remote profile key mismatch")
            value = decode(data["value"])
        except Exception:  # noqa: BLE001 - refuse, don't misread
            with self._counter_lock:
                self._prc.errors += 1
                self._prc.misses += 1
            return None
        with self._counter_lock:
            self._prc.hits += 1
        return value

    def _remote_profile_publish(self, full_key: tuple, value: object) -> None:
        """Publish one freshly fitted profile to the shared tier."""
        try:
            key_obj = encode(("profile", full_key))
            payload = json.dumps(
                {
                    "schema_version": WORKSPACE_SCHEMA_VERSION,
                    "key": key_obj,
                    "value": encode(value),
                }
            )
            stored = self._remote.put(digest(key_obj), payload)
        except Exception:  # noqa: BLE001 - tier must never raise
            stored = False
        with self._counter_lock:
            if stored:
                self._prc.writes += 1
            else:
                self._prc.errors += 1

    def _workspace_lock(self) -> FileLock:
        return FileLock(
            self.root / ".workspace.lock", timeout_s=self._lock_timeout_s
        )

    def save(self) -> None:
        """Persist every settled profile-store entry (atomic rewrite).

        Runs under the workspace's inter-process lock and *merges* with
        whatever is on disk first, so concurrent processes sharing this
        root union their profiles instead of losing each other's writes
        (this session's entries win any key collision, though collisions
        are value-identical by construction: profiling is deterministic
        in its key).
        """
        with self._io_lock, self._workspace_lock():
            data = self._read_profiles_file()
            merged = self._decode_entries(data) if data is not None else {}
            merged.update(self.store.entries())
            entries = [
                {"k": encode(key), "v": encode(value)}
                for key, value in merged.items()
            ]
            payload = {
                "schema_version": WORKSPACE_SCHEMA_VERSION,
                "entries": entries,
            }
            _atomic_write(self.profiles_path, json.dumps(payload))

    # -- stats ---------------------------------------------------------------

    @property
    def tracer(self) -> "Tracer | None":
        """The session's :class:`~repro.obs.Tracer`, or None when off.

        When set, every :meth:`plan` call emits a ``plan`` span with
        its tier probes, compile and solver activity as child spans
        (span taxonomy in ``docs/OBSERVABILITY.md``).
        """
        return self._tracer

    @property
    def stats(self) -> WorkspaceStats:
        """Exact cache counters for this session.

        O(1) by construction -- counters and occupancy gauges are
        maintained incrementally, never by scanning a store or the disk
        -- so the serving and report layers can snapshot it per request
        without perturbing the paths it measures.  (Disk occupancy *is*
        a scan; it lives in :meth:`cache_info`, the CLI-only path.)
        """
        service = self._service_stats
        l1 = self._l1.stats if self._l1 is not None else TierStats()
        with self._counter_lock:
            cache = CacheStats(
                l1=replace(
                    l1, fills=self._l1c.fills, writes=self._l1c.writes
                ),
                l2=self._l2c.snapshot(),
                l3=self._l3c.snapshot(),
                profiles_remote=self._prc.snapshot(),
            )
            return WorkspaceStats(
                profiles=self.store.stats,
                plan_hits=self._plan_hits,
                plan_misses=self._plan_misses,
                solver=solver_stats(),
                service=service() if service is not None else None,
                cache=cache,
            )

    def bind_service(
        self, stats_fn: Callable[[], "ServiceStats"] | None
    ) -> None:
        """Attach (or detach, with None) a serving layer's stats snapshot.

        Called by :class:`~repro.serve.PlanService` on construction so
        :attr:`stats` surfaces the service counters alongside the cache
        counters.  The last bound service wins.
        """
        self._service_stats = stats_fn

    def cache_info(self) -> dict[str, object]:
        """Inspectable summary of the on-disk caches (for ``repro cache``)."""
        plan_files = sorted(self.plans_dir.glob("*.json"))
        return {
            "root": str(self.root),
            "profiles_path": str(self.profiles_path),
            "profile_entries": len(self.store),
            "plan_dir": str(self.plans_dir),
            "plan_entries": len(plan_files),
            "plan_bytes": sum(f.stat().st_size for f in plan_files),
            "l1_entries": len(self._l1) if self._l1 is not None else 0,
            "l1_bytes": self._l1.bytes if self._l1 is not None else 0,
            "remote": self._remote.address if self._remote else "",
            "schema_version": WORKSPACE_SCHEMA_VERSION,
        }

    def clear(self) -> None:
        """Discard every tier (memory, disk, session counters).

        The shared remote tier is *not* cleared: it is owned by the
        fleet, not this process, and its entries remain content-valid.
        """
        with self._io_lock:
            self.discard(self.root)
        if self._l1 is not None:
            self._l1.clear(reset_stats=True)
        with self._counter_lock:
            self._plan_hits = 0
            self._plan_misses = 0
            self._plan_futures = {}
            for cell in (self._l1c, self._l2c, self._l3c, self._prc):
                cell.reset()
        self.store = ProfileStore()
        self._bind_store_remote()

    @staticmethod
    def discard(root: str | Path) -> dict[str, int]:
        """Delete a workspace's cache files without opening the workspace.

        Unlike ``Workspace(root).clear()`` this never reads the caches, so
        it also recovers workspaces a plain open would *refuse* (schema
        written by another library version) -- it is what ``python -m
        repro cache clear`` runs.  Quarantined ``*.corrupt`` files are
        removed as well.

        Returns:
            Count of profile and plan files removed.
        """
        root = Path(root).expanduser()
        removed = {"profiles": 0, "plans": 0}
        for path in root.glob("profiles.json*"):
            path.unlink(missing_ok=True)
            removed["profiles"] += 1
        # .workspace.lock is deliberately left in place: unlinking it
        # while another process holds or awaits its flock would split the
        # lock and reopen the lost-update race merge-save exists to close.
        plans_dir = root / "plans"
        if plans_dir.is_dir():
            for path in plans_dir.glob("*.json*"):
                path.unlink(missing_ok=True)
                removed["plans"] += 1
            # Advisory per-digest lock files go too.  Racing a concurrent
            # compiler here at worst duplicates one compile (writes stay
            # atomic and content-identical); `clear` is destructive anyway.
            for path in plans_dir.glob("*.lock"):
                path.unlink(missing_ok=True)
        return removed

    @staticmethod
    def gc_plans(
        root: str | Path,
        *,
        max_age_days: float | None = None,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> dict[str, int]:
        """Evict plan-cache files by age and/or LRU order to fit bounds.

        Like :meth:`discard` this works at the file level -- it never
        reads the plans, so it also trims workspaces a plain open would
        refuse.  A plan file's mtime is refreshed on every cache *read*
        as well as on (re)writes, so mtime order approximates LRU order
        and ``max_age_days`` means "not used in N days".  Quarantined
        ``*.corrupt`` files age out the same way.

        At least one bound must be given; they compose (age first, then
        oldest-first eviction until both size bounds hold).

        Args:
            root: the workspace directory.
            max_age_days: age threshold in days; must be >= 0.
            max_bytes: total plan-cache byte budget; evicts least
                recently used files until under it.  Must be >= 0.
            max_entries: plan-file count budget, same LRU order.  Must
                be >= 0.

        Returns:
            ``{"removed": ..., "kept": ..., "removed_bytes": ...,
            "kept_bytes": ...}`` plan-file counts and byte totals.

        Raises:
            ConfigError: for a negative bound, or no bound at all.
        """
        if max_age_days is None and max_bytes is None and max_entries is None:
            raise ConfigError(
                "gc_plans needs at least one bound: max_age_days, "
                "max_bytes or max_entries"
            )
        if max_age_days is not None and max_age_days < 0:
            raise ConfigError(
                f"max_age_days must be >= 0, got {max_age_days}"
            )
        if max_bytes is not None and max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ConfigError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        files: list[tuple[float, Path, int]] = []  # (mtime, path, size)
        plans_dir = Path(root).expanduser() / "plans"
        if plans_dir.is_dir():
            for path in sorted(plans_dir.glob("*.json*")):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - racing cleaners
                    continue
                files.append((stat.st_mtime, path, stat.st_size))
        files.sort()  # oldest (least recently used) first
        removed = removed_bytes = 0
        kept = len(files)
        kept_bytes = sum(size for _, _, size in files)

        def evict(index: int) -> None:
            nonlocal removed, removed_bytes, kept, kept_bytes
            _, path, size = files[index]
            path.unlink(missing_ok=True)
            removed += 1
            removed_bytes += size
            kept -= 1
            kept_bytes -= size

        survivor = 0  # files[:survivor] already evicted
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            while survivor < len(files) and files[survivor][0] < cutoff:
                evict(survivor)
                survivor += 1
        while survivor < len(files) and (
            (max_entries is not None and kept > max_entries)
            or (max_bytes is not None and kept_bytes > max_bytes)
        ):
            evict(survivor)
            survivor += 1
        return {
            "removed": removed,
            "kept": kept,
            "removed_bytes": removed_bytes,
            "kept_bytes": kept_bytes,
        }

    # -- planning ------------------------------------------------------------

    def compiler(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None = None,
        *,
        noise: float = 0.0,
        seed: int = 0,
        r_max: int = DEFAULT_MAX_DEGREE,
    ) -> PlanCompiler:
        """A :class:`PlanCompiler` backed by this workspace's store.

        The low-level escape hatch: profiling runs through the persistent
        cache, but compiled plans bypass the plan cache.
        """
        return PlanCompiler(
            cluster,
            parallel,
            store=self.store,
            noise=noise,
            seed=seed,
            r_max=r_max,
        )

    def _plan_key(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec,
        stack: tuple[MoELayerSpec, ...],
        gates: tuple[GateKind, ...],
        system: TrainingSystem,
        routing_overhead: float,
        include_gar: bool,
        noise: float,
        seed: int,
    ) -> object:
        return encode(
            (
                "plan",
                cluster,
                parallel,
                stack,
                gates,
                tuple(system.fingerprint()),
                float(routing_overhead),
                bool(include_gar),
                float(noise),
                int(seed),
            )
        )

    def _load_plan_entry(
        self, path: Path, key_json: str
    ) -> tuple[IterationPlan, int] | None:
        """Read one plan file; ``(plan, size_bytes)`` or None.

        Unreadable files are quarantined (and counted as L2 errors);
        cross-version files are refused with an exception, never
        misread.
        """
        if not path.exists():
            return None
        try:
            text = path.read_text()
            data = json.loads(text)
        except (OSError, ValueError):
            _quarantine(path)
            with self._counter_lock:
                self._l2c.errors += 1
            return None
        if not isinstance(data, dict) or "schema_version" not in data:
            _quarantine(path)
            with self._counter_lock:
                self._l2c.errors += 1
            return None
        if data["schema_version"] != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"plan cache file {path} was written with schema version "
                f"{data['schema_version']!r}; this build reads version "
                f"{WORKSPACE_SCHEMA_VERSION}.  Run `python -m repro cache "
                f"clear --workspace {self.root}` to discard it."
            )
        if canonical_json(data.get("key")) != key_json:
            return None  # digest collision or stale file: recompute
        return IterationPlan.from_dict(data["plan"]), len(text)

    def _load_plan_file(self, path: Path, key_json: str) -> IterationPlan | None:
        """The bare L2 read (no counters, no fills): the disk baseline."""
        entry = self._load_plan_entry(path, key_json)
        return entry[0] if entry is not None else None

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh a plan file's mtime so mtime order approximates LRU."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - racing GC
            pass

    def _fill_l1(self, dig: str, plan: IterationPlan, size: int) -> None:
        """Read-through fill of the memory tier from a lower-tier hit."""
        if self._l1 is None:
            return
        self._l1.put(dig, plan, size=size)
        with self._counter_lock:
            self._l1c.fills += 1

    def _probe_disk(
        self, dig: str, path: Path, key_json: str, *, count_miss: bool = True
    ) -> IterationPlan | None:
        """One counted L2 lookup: load, touch, and fill L1 on a hit.

        The re-probe under the per-digest lock passes
        ``count_miss=False``: that probe only confirms (and counts) a
        cross-process fill, the fall-through to a compile was already
        counted by the first probe.
        """
        entry = self._load_plan_entry(path, key_json)
        if entry is None:
            if count_miss:
                with self._counter_lock:
                    self._l2c.misses += 1
            return None
        plan, size = entry
        with self._counter_lock:
            self._l2c.hits += 1
        self._touch(path)
        self._fill_l1(dig, plan, size)
        return plan

    def _probe_remote(
        self, dig: str, path: Path, key_json: str
    ) -> IterationPlan | None:
        """One counted L3 lookup; hits fill the disk and memory tiers.

        The remote document is the exact on-disk file text, so it is
        validated by the same reader (schema version and full content
        key); an undecodable or cross-version document counts an error
        and degrades to a miss -- refused, never misread.
        """
        text = self._remote.get(dig)
        if text is None:
            with self._counter_lock:
                self._l3c.misses += 1
            return None
        try:
            data = json.loads(text)
            if data["schema_version"] != WORKSPACE_SCHEMA_VERSION:
                raise ValueError("cross-version remote plan")
            if canonical_json(data["key"]) != key_json:
                raise ValueError("remote plan key mismatch")
            plan = IterationPlan.from_dict(data["plan"])
        except Exception:  # noqa: BLE001 - refuse, don't misread
            with self._counter_lock:
                self._l3c.errors += 1
                self._l3c.misses += 1
            return None
        with self._counter_lock:
            self._l3c.hits += 1
        with self._io_lock:
            _atomic_write(path, text)
        with self._counter_lock:
            self._l2c.fills += 1
        self._fill_l1(dig, plan, len(text))
        return plan

    def _lookup_plan(
        self, dig: str, path: Path, key_json: str
    ) -> IterationPlan | None:
        """Fall through the tier stack: L1 memory, L2 disk, L3 remote.

        When tracing is on, each tier probe becomes a child span of the
        enclosing ``plan`` span, named ``lN_probe`` while in flight and
        renamed ``lN_hit`` when the tier answers -- so a trace shows
        both the miss path walked and the tier that finally hit.  When
        off, the only cost per probe is one ``is None`` check.
        """
        tracer = self._tracer
        if self._l1 is not None:
            span = tracer.start("l1_probe") if tracer is not None else None
            plan = self._l1.get(dig)  # counts its own hit/miss
            if span is not None:
                if plan is not None:
                    span.name = "l1_hit"
                span.end()
            if plan is not None:
                return plan
        span = tracer.start("l2_probe") if tracer is not None else None
        plan = self._probe_disk(dig, path, key_json)
        if span is not None:
            if plan is not None:
                span.name = "l2_hit"
            span.end()
        if plan is None and self._remote is not None:
            span = tracer.start("l3_probe") if tracer is not None else None
            plan = self._probe_remote(dig, path, key_json)
            if span is not None:
                if plan is not None:
                    span.name = "l3_hit"
                span.end()
        return plan

    @staticmethod
    def normalize_request(
        stack,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None,
        gate_kind: GateKind | Sequence[GateKind],
    ) -> tuple[
        tuple[MoELayerSpec, ...], ParallelSpec, tuple[GateKind, ...]
    ]:
        """Canonicalize one plan request's (stack, layout, gates).

        Shared by :meth:`plan` and the serving layer, so two requests
        that differ only in spelling (single spec vs 1-tuple, one gate vs
        a uniform gate tuple, implicit vs explicit standard layout) map
        to the same plan identity.

        Raises:
            ConfigError: for an empty stack or malformed gate sequence.
        """
        if isinstance(stack, MoELayerSpec):
            stack = (stack,)
        stack = tuple(stack)
        if not stack:
            raise ConfigError("stack must contain at least one layer spec")
        if parallel is None:
            parallel = standard_layout(
                cluster.total_gpus, cluster.gpus_per_node
            )
        if isinstance(gate_kind, GateKind):
            gates = (gate_kind,) * len(stack)
        else:
            gates = tuple(gate_kind)
            if len(gates) != len(stack):
                raise ConfigError(
                    f"gate_kind sequence has {len(gates)} entries for "
                    f"{len(stack)} layers"
                )
        return stack, parallel, gates

    def plan_digest(
        self,
        stack,
        system: TrainingSystem,
        cluster: ClusterSpec,
        *,
        parallel: ParallelSpec | None = None,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
        noise: float = 0.0,
        seed: int = 0,
    ) -> str:
        """Content address of one plan request (no planning performed).

        The digest names the plan-cache file a matching :meth:`plan`
        call would read or write; the serving layer keys its
        single-flight bookkeeping on it.
        """
        stack, parallel, gates = self.normalize_request(
            stack, cluster, parallel, gate_kind
        )
        key = self._plan_key(
            cluster, parallel, stack, gates, system,
            routing_overhead, include_gar, noise, seed,
        )
        return digest(key)

    def plan(
        self,
        stack,
        system: TrainingSystem,
        cluster: ClusterSpec,
        *,
        parallel: ParallelSpec | None = None,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
        noise: float = 0.0,
        seed: int = 0,
    ) -> IterationPlan:
        """Compile (or recall) the plan for one (stack, system, cluster).

        Same semantics as :meth:`PlanCompiler.compile`, plus the two
        persistent caches: profiling goes through the workspace store and
        the finished plan is content-addressed on
        ``(cluster, layout, stack, gates, system, knobs)``.  A request
        whose plan is already on disk -- from this session or any earlier
        process -- touches neither the profiler nor the solvers.

        Raises:
            ConfigError: for an empty stack or malformed gate sequence.
            WorkspaceError: for a plan-cache schema-version mismatch.
        """
        stack, parallel, gates = self.normalize_request(
            stack, cluster, parallel, gate_kind
        )
        key = self._plan_key(
            cluster, parallel, stack, gates, system,
            routing_overhead, include_gar, noise, seed,
        )
        key_json = canonical_json(key)
        dig = digest(key)

        tracer = self._tracer
        if tracer is None:
            return self._plan_resolve(
                stack, cluster, parallel, gates, system,
                routing_overhead, include_gar, noise, seed,
                key, key_json, dig,
            )
        with tracer.start(
            "plan",
            {"digest": dig, "system": system.name, "layers": len(stack)},
        ):
            return self._plan_resolve(
                stack, cluster, parallel, gates, system,
                routing_overhead, include_gar, noise, seed,
                key, key_json, dig,
            )

    def _plan_resolve(
        self,
        stack: tuple[MoELayerSpec, ...],
        cluster: ClusterSpec,
        parallel: ParallelSpec,
        gates: tuple[GateKind, ...],
        system: TrainingSystem,
        routing_overhead: float,
        include_gar: bool,
        noise: float,
        seed: int,
        key: object,
        key_json: str,
        dig: str,
    ) -> IterationPlan:
        """The single-flight tier walk + compile behind :meth:`plan`."""
        tracer = self._tracer
        owner = False
        with self._counter_lock:
            future = self._plan_futures.get(dig)
            if future is None:
                future = Future()
                self._plan_futures[dig] = future
                owner = True
            else:
                self._plan_hits += 1
        if not owner:
            # Joined onto another thread's in-flight resolution of the
            # same digest; the `join` span covers the wait.
            if tracer is None:
                return future.result()
            with tracer.start("join"):
                return future.result()

        path = self.plans_dir / f"{dig}.json"
        try:
            plan = self._lookup_plan(dig, path, key_json)
            if plan is not None:
                with self._counter_lock:
                    self._plan_hits += 1
            else:
                # Cross-process single-flight: hold this digest's advisory
                # lock across the compile so a second process sharing the
                # root blocks briefly and then loads our plan instead of
                # recomputing it.
                plan_lock = FileLock(
                    self.plans_dir / f"{dig}.lock",
                    timeout_s=self._lock_timeout_s,
                )
                with plan_lock:
                    span = (
                        tracer.start("l2_probe")
                        if tracer is not None
                        else None
                    )
                    plan = self._probe_disk(
                        dig, path, key_json, count_miss=False
                    )
                    if span is not None:
                        if plan is not None:
                            span.name = "l2_hit"
                        span.end()
                    if plan is not None:
                        # Another process compiled it while we waited.
                        with self._counter_lock:
                            self._plan_hits += 1
                    else:
                        compiler = self.compiler(
                            cluster, parallel, noise=noise, seed=seed,
                            r_max=system.r_max,
                        )
                        plan = compiler.compile(
                            stack,
                            system,
                            gate_kind=gates,
                            routing_overhead=routing_overhead,
                            include_gar=include_gar,
                        )
                        with self._counter_lock:
                            self._plan_misses += 1
                        payload = json.dumps(
                            {
                                "schema_version": WORKSPACE_SCHEMA_VERSION,
                                "key": key,
                                "plan": plan.to_dict(),
                            }
                        )
                        # Write-through: disk, then memory, then (best
                        # effort) the shared tier.
                        with self._io_lock:
                            _atomic_write(path, payload)
                        with self._counter_lock:
                            self._l2c.writes += 1
                        if self._l1 is not None:
                            self._l1.put(dig, plan, size=len(payload))
                            with self._counter_lock:
                                self._l1c.writes += 1
                        if self._remote is not None:
                            stored = self._remote.put(dig, payload)
                            with self._counter_lock:
                                if stored:
                                    self._l3c.writes += 1
                                else:
                                    self._l3c.errors += 1
                if self._autosave and not self._defer_save:
                    self.save()
        except BaseException as exc:
            with self._counter_lock:
                del self._plan_futures[dig]
            future.set_exception(exc)
            raise
        future.set_result(plan)
        # Completed futures are not kept: later requests in this session
        # are answered by the L1 tier (or disk), so the in-flight map
        # stays bounded by genuine concurrency, not by session length.
        with self._counter_lock:
            self._plan_futures.pop(dig, None)
        return plan

    # -- sweeps --------------------------------------------------------------

    def sweep(
        self,
        spec: ExperimentSpec,
        *,
        max_workers: int | None = None,
    ) -> ExperimentResult:
        """Plan and simulate a declarative experiment grid.

        The grid fans out over a thread pool; all profiling deduplicates
        through the persistent store and every plan lands in (or comes
        from) the plan cache.  Re-running the same spec against the same
        workspace is fully warm: zero profiles fitted, zero plans
        compiled (assert via :attr:`stats`).

        Args:
            spec: the experiment description.
            max_workers: thread-pool width; defaults to the CPU count
                capped at the number of grid points.
        """
        deployments, systems = spec.resolve()
        default_gate = spec.gate_kind
        grid: list[tuple] = []
        for cluster, parallel in deployments:
            for stack_spec in spec.stacks:
                stack = stack_spec.resolve(parallel)
                gates = stack_spec.resolve_gates(len(stack), default_gate)
                for system in systems:
                    grid.append((cluster, parallel, stack, gates, system))

        tracer = self._tracer
        sweep_span = (
            tracer.start("sweep", {"name": spec.name, "points": len(grid)})
            if tracer is not None
            else None
        )

        def run_point(point: tuple) -> PlanPoint:
            cluster, parallel, stack, gates, system = point
            # Pool threads don't inherit the submitting context's
            # current span, so the per-point span parents explicitly
            # onto the sweep span (serial and pooled sweeps then trace
            # identically).
            if sweep_span is not None:
                with tracer.start(
                    "point", {"system": system.name}, parent=sweep_span
                ):
                    return plan_point(
                        cluster, parallel, stack, gates, system
                    )
            return plan_point(cluster, parallel, stack, gates, system)

        def plan_point(
            cluster, parallel, stack, gates, system
        ) -> PlanPoint:
            plan = self.plan(
                stack,
                system,
                cluster,
                parallel=parallel,
                gate_kind=gates,
                routing_overhead=spec.routing_overhead,
                noise=spec.noise,
                seed=spec.seed,
            )
            return PlanPoint(
                cluster=cluster,
                parallel=parallel,
                stack=stack,
                system_name=system.name,
                gate_kind=gates[0],
                plan=plan,
                makespan_ms=plan.makespan_ms(),
                gate_kinds=gates if len(set(gates)) > 1 else None,
            )

        if max_workers is None:
            max_workers = min(len(grid), os.cpu_count() or 1)
        max_workers = max(1, max_workers)
        self._defer_save = True
        try:
            if max_workers == 1:
                points = tuple(run_point(point) for point in grid)
            else:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    points = tuple(pool.map(run_point, grid))
        finally:
            self._defer_save = False
            if sweep_span is not None:
                sweep_span.end()
        if self._autosave:
            self.save()
        return ExperimentResult(spec=spec, points=points)
