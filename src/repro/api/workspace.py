"""Disk-rooted experiment sessions: profile + plan caches that survive.

A :class:`Workspace` is the library's front door.  It owns

* a **persistent** :class:`~repro.planner.store.ProfileStore` -- every
  cluster and layer profile fitted through the workspace is written to
  ``<root>/profiles.json`` (versioned, atomic writes, corruption
  tolerated by quarantining the bad file) and preloaded on the next
  open, so a second process re-fits nothing;
* a **content-addressed plan cache** -- every compiled
  :class:`~repro.planner.plan.IterationPlan` lands in
  ``<root>/plans/<digest>.json``, keyed on the full plan identity
  (cluster, layout, stack, gates, system fingerprint, profiler knobs),
  so a warm re-run of any sweep compiles zero plans and replays each one
  bit-identically.

Both caches expose exact hit/miss counters (:attr:`Workspace.stats`):
"this re-run fitted zero new profiles and compiled zero new plans" is an
assertion, not a hope.

On-disk layout::

    <root>/
      profiles.json          # schema_version + exported ProfileStore
      plans/
        <digest>.json        # schema_version + key + serialized plan

Schema-version mismatches are *refused* (a newer library must not
silently misread an older cache -- run ``python -m repro cache clear``);
truncated or otherwise unparsable files are *recovered from* (renamed to
``*.corrupt`` and treated as empty).
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..bench.runner import ConfigResult
from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.fastsolve import SolverStats, solver_stats
from ..core.pipeline_degree import DEFAULT_MAX_DEGREE
from ..errors import ConfigError, WorkspaceError
from ..locking import FileLock
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..planner.batch import PlanPoint
from ..planner.compiler import PlanCompiler
from ..planner.plan import IterationPlan
from ..planner.store import ProfileStore, StoreStats
from ..systems.base import TrainingSystem
from .codec import canonical_json, decode, digest, encode
from .spec import ExperimentSpec

if TYPE_CHECKING:  # imported lazily at runtime: serve sits above api
    from ..serve.stats import ServiceStats

#: current on-disk format of profiles.json and plans/*.json.
WORKSPACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class WorkspaceStats:
    """Cache counters for one workspace session.

    Attributes:
        profiles: the profile store's hit/miss counters.
        plan_hits: plan requests served from cache (disk or session).
        plan_misses: plans actually compiled this session.
        solver: the batched Algorithm-1 solver's counters (solves,
            cache hits, batch calls/sizes).  Process-wide, not
            per-workspace: the degree-solution memo is shared by every
            session in the process.
        service: counters of the :class:`~repro.serve.PlanService`
            bound to this workspace (None when no service is serving
            from it).
    """

    profiles: StoreStats
    plan_hits: int = 0
    plan_misses: int = 0
    solver: SolverStats = SolverStats()
    service: "ServiceStats | None" = None

    @property
    def warm(self) -> bool:
        """True when this session computed nothing new at all."""
        return self.profiles.misses == 0 and self.plan_misses == 0

    def since(self, earlier: "WorkspaceStats") -> "WorkspaceStats":
        """Counter delta between two snapshots of one session.

        The report runner snapshots :attr:`Workspace.stats` around each
        artifact and attributes the windowed counters (profiles fitted,
        plans compiled, degree solves) to it.  ``service`` is carried
        from the later snapshot: service counters are cumulative
        per-service, not windowable here.
        """
        return WorkspaceStats(
            profiles=self.profiles - earlier.profiles,
            plan_hits=self.plan_hits - earlier.plan_hits,
            plan_misses=self.plan_misses - earlier.plan_misses,
            solver=self.solver - earlier.solver,
            service=self.service,
        )


@dataclass(frozen=True)
class ExperimentResult:
    """All planned points of one :meth:`Workspace.sweep`, in grid order.

    Grid order is ``clusters`` (outer) x ``stacks`` x ``systems``
    (inner), matching :func:`~repro.planner.batch.plan_many`.
    """

    spec: ExperimentSpec
    points: tuple[PlanPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def rows(self) -> list[dict[str, object]]:
        """Tidy table: one flat dict per planned point."""
        return [point.row() for point in self.points]

    def config_results(self) -> list[ConfigResult]:
        """One :class:`~repro.bench.runner.ConfigResult` per
        (cluster, stack) case, in grid order.

        Bridges declarative sweeps into the existing reporting helpers
        (:func:`~repro.bench.runner.speedups_over`, ...).
        """
        cases: dict[tuple, ConfigResult] = {}
        order: list[tuple] = []
        for point in self.points:
            key = (point.cluster, point.stack)
            if key not in cases:
                cases[key] = ConfigResult(
                    spec=point.stack[0],
                    parallel=point.parallel,
                    times_ms={},
                )
                order.append(key)
            cases[key].times_ms[point.system_name] = point.makespan_ms
        return [cases[key] for key in order]


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp file)."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _quarantine(path: Path) -> None:
    """Move an unreadable cache file aside instead of deleting evidence."""
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - racing cleaners
        pass
    warnings.warn(
        f"workspace cache file {path} was unreadable; "
        f"moved to {target.name} and starting fresh",
        stacklevel=3,
    )


class Workspace:
    """A disk-rooted session over the planner: open, plan, re-run warm.

    Args:
        root: directory holding the caches (created if missing).
        autosave: persist new profiles after each cache-missing
            :meth:`plan` call (sweeps batch the save regardless).
        lock_timeout_s: bound on waiting for another *process*'s
            advisory lock (profile saves, in-flight plan compiles).

    Concurrent processes may share one root: profile saves merge with
    the on-disk entries under an advisory file lock
    (``<root>/.workspace.lock``) instead of overwriting each other, and
    plan compiles single-flight across processes through per-digest
    locks (``plans/<digest>.lock``) -- the second process blocks briefly
    and then loads the first one's plan from disk.

    Raises:
        WorkspaceError: when an existing cache was written by a
            different schema version (refused, never misread).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        autosave: bool = True,
        lock_timeout_s: float = 600.0,
    ) -> None:
        self.root = Path(root).expanduser()
        self.plans_dir = self.root / "plans"
        self.plans_dir.mkdir(parents=True, exist_ok=True)
        self._autosave = autosave
        self._lock_timeout_s = lock_timeout_s
        self._io_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._plan_futures: dict[str, Future] = {}
        self._plan_hits = 0
        self._plan_misses = 0
        self._defer_save = False
        self._service_stats: Callable[[], "ServiceStats"] | None = None
        self.store = ProfileStore()
        self._load_profiles()

    # -- persistence ---------------------------------------------------------

    @property
    def profiles_path(self) -> Path:
        """Location of the persisted profile store."""
        return self.root / "profiles.json"

    @staticmethod
    def _decode_entries(data: dict) -> dict[object, object]:
        entries: dict[object, object] = {}
        for entry in data.get("entries", ()):
            try:
                key = decode(entry["k"])
                value = decode(entry["v"])
            except (WorkspaceError, KeyError, TypeError, ValueError):
                # A single undecodable entry (e.g. written by a build with
                # extra registered types) must not poison the rest.
                continue
            entries[key] = value
        return entries

    def _read_profiles_file(self) -> dict | None:
        """Parse ``profiles.json``; quarantine unreadable files.

        Raises:
            WorkspaceError: for a schema-version mismatch.
        """
        path = self.profiles_path
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            _quarantine(path)
            return None
        if not isinstance(data, dict) or "schema_version" not in data:
            _quarantine(path)
            return None
        version = data["schema_version"]
        if version != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"workspace {self.root} was written with schema version "
                f"{version!r}; this build reads version "
                f"{WORKSPACE_SCHEMA_VERSION}.  Run `python -m repro cache "
                f"clear --workspace {self.root}` to discard it."
            )
        return data

    def _load_profiles(self) -> None:
        data = self._read_profiles_file()
        if data is not None:
            self.store.preload(self._decode_entries(data))

    def _workspace_lock(self) -> FileLock:
        return FileLock(
            self.root / ".workspace.lock", timeout_s=self._lock_timeout_s
        )

    def save(self) -> None:
        """Persist every settled profile-store entry (atomic rewrite).

        Runs under the workspace's inter-process lock and *merges* with
        whatever is on disk first, so concurrent processes sharing this
        root union their profiles instead of losing each other's writes
        (this session's entries win any key collision, though collisions
        are value-identical by construction: profiling is deterministic
        in its key).
        """
        with self._io_lock, self._workspace_lock():
            data = self._read_profiles_file()
            merged = self._decode_entries(data) if data is not None else {}
            merged.update(self.store.entries())
            entries = [
                {"k": encode(key), "v": encode(value)}
                for key, value in merged.items()
            ]
            payload = {
                "schema_version": WORKSPACE_SCHEMA_VERSION,
                "entries": entries,
            }
            _atomic_write(self.profiles_path, json.dumps(payload))

    # -- stats ---------------------------------------------------------------

    @property
    def stats(self) -> WorkspaceStats:
        """Exact cache counters for this session."""
        service = self._service_stats
        with self._counter_lock:
            return WorkspaceStats(
                profiles=self.store.stats,
                plan_hits=self._plan_hits,
                plan_misses=self._plan_misses,
                solver=solver_stats(),
                service=service() if service is not None else None,
            )

    def bind_service(
        self, stats_fn: Callable[[], "ServiceStats"] | None
    ) -> None:
        """Attach (or detach, with None) a serving layer's stats snapshot.

        Called by :class:`~repro.serve.PlanService` on construction so
        :attr:`stats` surfaces the service counters alongside the cache
        counters.  The last bound service wins.
        """
        self._service_stats = stats_fn

    def cache_info(self) -> dict[str, object]:
        """Inspectable summary of the on-disk caches (for ``repro cache``)."""
        plan_files = sorted(self.plans_dir.glob("*.json"))
        return {
            "root": str(self.root),
            "profiles_path": str(self.profiles_path),
            "profile_entries": len(self.store),
            "plan_dir": str(self.plans_dir),
            "plan_entries": len(plan_files),
            "plan_bytes": sum(f.stat().st_size for f in plan_files),
            "schema_version": WORKSPACE_SCHEMA_VERSION,
        }

    def clear(self) -> None:
        """Discard both caches (disk and session state)."""
        with self._io_lock:
            self.discard(self.root)
        with self._counter_lock:
            self._plan_hits = 0
            self._plan_misses = 0
            self._plan_futures = {}
        self.store = ProfileStore()

    @staticmethod
    def discard(root: str | Path) -> dict[str, int]:
        """Delete a workspace's cache files without opening the workspace.

        Unlike ``Workspace(root).clear()`` this never reads the caches, so
        it also recovers workspaces a plain open would *refuse* (schema
        written by another library version) -- it is what ``python -m
        repro cache clear`` runs.  Quarantined ``*.corrupt`` files are
        removed as well.

        Returns:
            Count of profile and plan files removed.
        """
        root = Path(root).expanduser()
        removed = {"profiles": 0, "plans": 0}
        for path in root.glob("profiles.json*"):
            path.unlink(missing_ok=True)
            removed["profiles"] += 1
        # .workspace.lock is deliberately left in place: unlinking it
        # while another process holds or awaits its flock would split the
        # lock and reopen the lost-update race merge-save exists to close.
        plans_dir = root / "plans"
        if plans_dir.is_dir():
            for path in plans_dir.glob("*.json*"):
                path.unlink(missing_ok=True)
                removed["plans"] += 1
            # Advisory per-digest lock files go too.  Racing a concurrent
            # compiler here at worst duplicates one compile (writes stay
            # atomic and content-identical); `clear` is destructive anyway.
            for path in plans_dir.glob("*.lock"):
                path.unlink(missing_ok=True)
        return removed

    @staticmethod
    def gc_plans(
        root: str | Path, *, max_age_days: float
    ) -> dict[str, int]:
        """Evict plan-cache files not touched in ``max_age_days`` days.

        Like :meth:`discard` this works at the file level -- it never
        reads the plans, so it also trims workspaces a plain open would
        refuse.  A plan's mtime is refreshed only when it is (re)written,
        so "touched" means "compiled or recompiled", not "read".
        Quarantined ``*.corrupt`` files age out the same way.

        Args:
            root: the workspace directory.
            max_age_days: eviction threshold; must be >= 0.

        Returns:
            ``{"removed": ..., "kept": ...}`` plan-file counts.

        Raises:
            ConfigError: for a negative age.
        """
        if max_age_days < 0:
            raise ConfigError(
                f"max_age_days must be >= 0, got {max_age_days}"
            )
        cutoff = time.time() - max_age_days * 86400.0
        removed = kept = 0
        plans_dir = Path(root).expanduser() / "plans"
        if plans_dir.is_dir():
            for path in sorted(plans_dir.glob("*.json*")):
                try:
                    stale = path.stat().st_mtime < cutoff
                except OSError:  # pragma: no cover - racing cleaners
                    continue
                if stale:
                    path.unlink(missing_ok=True)
                    removed += 1
                else:
                    kept += 1
        return {"removed": removed, "kept": kept}

    # -- planning ------------------------------------------------------------

    def compiler(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None = None,
        *,
        noise: float = 0.0,
        seed: int = 0,
        r_max: int = DEFAULT_MAX_DEGREE,
    ) -> PlanCompiler:
        """A :class:`PlanCompiler` backed by this workspace's store.

        The low-level escape hatch: profiling runs through the persistent
        cache, but compiled plans bypass the plan cache.
        """
        return PlanCompiler(
            cluster,
            parallel,
            store=self.store,
            noise=noise,
            seed=seed,
            r_max=r_max,
        )

    def _plan_key(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec,
        stack: tuple[MoELayerSpec, ...],
        gates: tuple[GateKind, ...],
        system: TrainingSystem,
        routing_overhead: float,
        include_gar: bool,
        noise: float,
        seed: int,
    ) -> object:
        return encode(
            (
                "plan",
                cluster,
                parallel,
                stack,
                gates,
                tuple(system.fingerprint()),
                float(routing_overhead),
                bool(include_gar),
                float(noise),
                int(seed),
            )
        )

    def _load_plan_file(self, path: Path, key_json: str) -> IterationPlan | None:
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            _quarantine(path)
            return None
        if not isinstance(data, dict) or "schema_version" not in data:
            _quarantine(path)
            return None
        if data["schema_version"] != WORKSPACE_SCHEMA_VERSION:
            raise WorkspaceError(
                f"plan cache file {path} was written with schema version "
                f"{data['schema_version']!r}; this build reads version "
                f"{WORKSPACE_SCHEMA_VERSION}.  Run `python -m repro cache "
                f"clear --workspace {self.root}` to discard it."
            )
        if canonical_json(data.get("key")) != key_json:
            return None  # digest collision or stale file: recompute
        return IterationPlan.from_dict(data["plan"])

    @staticmethod
    def normalize_request(
        stack,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None,
        gate_kind: GateKind | Sequence[GateKind],
    ) -> tuple[
        tuple[MoELayerSpec, ...], ParallelSpec, tuple[GateKind, ...]
    ]:
        """Canonicalize one plan request's (stack, layout, gates).

        Shared by :meth:`plan` and the serving layer, so two requests
        that differ only in spelling (single spec vs 1-tuple, one gate vs
        a uniform gate tuple, implicit vs explicit standard layout) map
        to the same plan identity.

        Raises:
            ConfigError: for an empty stack or malformed gate sequence.
        """
        if isinstance(stack, MoELayerSpec):
            stack = (stack,)
        stack = tuple(stack)
        if not stack:
            raise ConfigError("stack must contain at least one layer spec")
        if parallel is None:
            parallel = standard_layout(
                cluster.total_gpus, cluster.gpus_per_node
            )
        if isinstance(gate_kind, GateKind):
            gates = (gate_kind,) * len(stack)
        else:
            gates = tuple(gate_kind)
            if len(gates) != len(stack):
                raise ConfigError(
                    f"gate_kind sequence has {len(gates)} entries for "
                    f"{len(stack)} layers"
                )
        return stack, parallel, gates

    def plan_digest(
        self,
        stack,
        system: TrainingSystem,
        cluster: ClusterSpec,
        *,
        parallel: ParallelSpec | None = None,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
        noise: float = 0.0,
        seed: int = 0,
    ) -> str:
        """Content address of one plan request (no planning performed).

        The digest names the plan-cache file a matching :meth:`plan`
        call would read or write; the serving layer keys its
        single-flight bookkeeping on it.
        """
        stack, parallel, gates = self.normalize_request(
            stack, cluster, parallel, gate_kind
        )
        key = self._plan_key(
            cluster, parallel, stack, gates, system,
            routing_overhead, include_gar, noise, seed,
        )
        return digest(key)

    def plan(
        self,
        stack,
        system: TrainingSystem,
        cluster: ClusterSpec,
        *,
        parallel: ParallelSpec | None = None,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
        noise: float = 0.0,
        seed: int = 0,
    ) -> IterationPlan:
        """Compile (or recall) the plan for one (stack, system, cluster).

        Same semantics as :meth:`PlanCompiler.compile`, plus the two
        persistent caches: profiling goes through the workspace store and
        the finished plan is content-addressed on
        ``(cluster, layout, stack, gates, system, knobs)``.  A request
        whose plan is already on disk -- from this session or any earlier
        process -- touches neither the profiler nor the solvers.

        Raises:
            ConfigError: for an empty stack or malformed gate sequence.
            WorkspaceError: for a plan-cache schema-version mismatch.
        """
        stack, parallel, gates = self.normalize_request(
            stack, cluster, parallel, gate_kind
        )
        key = self._plan_key(
            cluster, parallel, stack, gates, system,
            routing_overhead, include_gar, noise, seed,
        )
        key_json = canonical_json(key)
        dig = digest(key)

        owner = False
        with self._counter_lock:
            future = self._plan_futures.get(dig)
            if future is None:
                future = Future()
                self._plan_futures[dig] = future
                owner = True
            else:
                self._plan_hits += 1
        if not owner:
            return future.result()

        path = self.plans_dir / f"{dig}.json"
        try:
            plan = self._load_plan_file(path, key_json)
            if plan is not None:
                with self._counter_lock:
                    self._plan_hits += 1
            else:
                # Cross-process single-flight: hold this digest's advisory
                # lock across the compile so a second process sharing the
                # root blocks briefly and then loads our plan instead of
                # recomputing it.
                plan_lock = FileLock(
                    self.plans_dir / f"{dig}.lock",
                    timeout_s=self._lock_timeout_s,
                )
                with plan_lock:
                    plan = self._load_plan_file(path, key_json)
                    if plan is not None:
                        # Another process compiled it while we waited.
                        with self._counter_lock:
                            self._plan_hits += 1
                    else:
                        compiler = self.compiler(
                            cluster, parallel, noise=noise, seed=seed,
                            r_max=system.r_max,
                        )
                        plan = compiler.compile(
                            stack,
                            system,
                            gate_kind=gates,
                            routing_overhead=routing_overhead,
                            include_gar=include_gar,
                        )
                        with self._counter_lock:
                            self._plan_misses += 1
                        payload = {
                            "schema_version": WORKSPACE_SCHEMA_VERSION,
                            "key": key,
                            "plan": plan.to_dict(),
                        }
                        with self._io_lock:
                            _atomic_write(path, json.dumps(payload))
                if self._autosave and not self._defer_save:
                    self.save()
        except BaseException as exc:
            with self._counter_lock:
                del self._plan_futures[dig]
            future.set_exception(exc)
            raise
        future.set_result(plan)
        return plan

    # -- sweeps --------------------------------------------------------------

    def sweep(
        self,
        spec: ExperimentSpec,
        *,
        max_workers: int | None = None,
    ) -> ExperimentResult:
        """Plan and simulate a declarative experiment grid.

        The grid fans out over a thread pool; all profiling deduplicates
        through the persistent store and every plan lands in (or comes
        from) the plan cache.  Re-running the same spec against the same
        workspace is fully warm: zero profiles fitted, zero plans
        compiled (assert via :attr:`stats`).

        Args:
            spec: the experiment description.
            max_workers: thread-pool width; defaults to the CPU count
                capped at the number of grid points.
        """
        deployments, systems = spec.resolve()
        default_gate = spec.gate_kind
        grid: list[tuple] = []
        for cluster, parallel in deployments:
            for stack_spec in spec.stacks:
                stack = stack_spec.resolve(parallel)
                gates = stack_spec.resolve_gates(len(stack), default_gate)
                for system in systems:
                    grid.append((cluster, parallel, stack, gates, system))

        def run_point(point: tuple) -> PlanPoint:
            cluster, parallel, stack, gates, system = point
            plan = self.plan(
                stack,
                system,
                cluster,
                parallel=parallel,
                gate_kind=gates,
                routing_overhead=spec.routing_overhead,
                noise=spec.noise,
                seed=spec.seed,
            )
            return PlanPoint(
                cluster=cluster,
                parallel=parallel,
                stack=stack,
                system_name=system.name,
                gate_kind=gates[0],
                plan=plan,
                makespan_ms=plan.makespan_ms(),
                gate_kinds=gates if len(set(gates)) > 1 else None,
            )

        if max_workers is None:
            max_workers = min(len(grid), os.cpu_count() or 1)
        max_workers = max(1, max_workers)
        self._defer_save = True
        try:
            if max_workers == 1:
                points = tuple(run_point(point) for point in grid)
            else:
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    points = tuple(pool.map(run_point, grid))
        finally:
            self._defer_save = False
        if self._autosave:
            self.save()
        return ExperimentResult(spec=spec, points=points)
