"""Declarative experiment descriptions: grids as data, not wiring code.

An :class:`ExperimentSpec` captures the whole ``clusters x stacks x
systems`` grid of an experiment -- the thing every example and benchmark
used to assemble imperatively -- as one serializable object.  It
round-trips through plain dicts, JSON and TOML, names systems, models
and clusters through the string registries (so a spec file needs no
imports), and compiles to the planner's grid inputs via
:meth:`ExperimentSpec.resolve`.

Schema (JSON shown; TOML is isomorphic)::

    {
      "name": "fig6-gpt2xl-A",
      "clusters": ["A", {"name": "A", "total_gpus": 16}],
      "systems": ["tutel", "fsmoe"],
      "stacks": [
        {"model": "GPT2-XL", "seq_len": 1024, "num_layers": 8},
        {"layers": [{"embed_dim": 2048, "num_experts": 8}], "num_layers": 2,
         "gates": ["xmoe", "gshard"]}   // optional per-layer overrides
      ],
      "gate": "gshard",        // optional, GateKind value
      "solver": "de",          // optional, FSMoE Step-2 solver
      "r_max": null,           // optional, pipeline-degree cap
      "routing_overhead": 1.0, // optional
      "noise": 0.0,            // optional, profiler jitter
      "seed": 0                // optional, profiler RNG seed
    }

A stack entry names **either** a registered model preset (expert count
defaults to the deployment's EP width, layer count to the preset's) or
explicit per-layer :class:`~repro.config.MoELayerSpec` fields
(heterogeneous stacks list several layer dicts).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.gradient_partition import STEP2_SOLVERS
from ..errors import ConfigError
from ..models.configs import get_model_preset, layer_spec_for
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..systems.base import TrainingSystem
from ..systems.registry import get_system
from .registry import get_cluster


@dataclass(frozen=True)
class ClusterRef:
    """A cluster named through the registry, optionally scaled.

    Attributes:
        name: registry key (``"A"``, ``"B"``, or a registered custom
            cluster).
        total_gpus: optional whole-node subset (Fig. 7 varied-P).
    """

    name: str
    total_gpus: int | None = None

    @classmethod
    def from_data(cls, data) -> "ClusterRef":
        """Parse a spec entry: a bare string or a ``{"name": ...}`` dict.

        Raises:
            ConfigError: for a malformed entry.
        """
        if isinstance(data, ClusterRef):
            return data
        if isinstance(data, str):
            return cls(name=data)
        if isinstance(data, dict):
            unknown = set(data) - {"name", "total_gpus"}
            if unknown or "name" not in data:
                raise ConfigError(
                    f"malformed cluster entry {data!r}; expected a name "
                    f"string or {{'name': ..., 'total_gpus': ...}}"
                )
            return cls(name=data["name"], total_gpus=data.get("total_gpus"))
        raise ConfigError(f"malformed cluster entry {data!r}")

    def to_data(self):
        """Inverse of :meth:`from_data` (compact form when unscaled)."""
        if self.total_gpus is None:
            return self.name
        return {"name": self.name, "total_gpus": self.total_gpus}

    def resolve(self) -> ClusterSpec:
        """Materialize the cluster through the registry."""
        return get_cluster(self.name, total_gpus=self.total_gpus)


@dataclass(frozen=True)
class StackSpec:
    """One grid entry: a layer stack, by model preset or explicit layers.

    Exactly one of ``model`` and ``layers`` must be given.

    Attributes:
        model: registered model-preset name.
        layers: explicit per-layer specs (heterogeneous stacks list
            different specs).
        batch_size / seq_len: deployment inputs for model presets.
        num_experts: expert count for model presets; ``None`` uses the
            deployment's EP width (the paper's "E = number of nodes").
        num_layers: stack depth; ``None`` uses the preset's layer count
            (model stacks) or the explicit list as given.  A single
            explicit layer replicates to this depth.
        gates: per-layer routing-function overrides (:class:`GateKind`
            values).  ``None`` uses the experiment-level ``gate`` for
            every layer; a single entry applies to the whole stack; a
            longer tuple must match the resolved stack depth.
    """

    model: str | None = None
    layers: tuple[MoELayerSpec, ...] | None = None
    batch_size: int = 1
    seq_len: int = 1024
    num_experts: int | None = None
    num_layers: int | None = None
    gates: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if (self.model is None) == (self.layers is None):
            raise ConfigError(
                "a stack entry needs exactly one of 'model' and 'layers'"
            )
        if self.gates is not None:
            gates = (
                (self.gates,) if isinstance(self.gates, str)
                else tuple(self.gates)
            )
            if not gates:
                raise ConfigError("'gates' must list at least one gate")
            for gate in gates:
                try:
                    GateKind(gate)
                except ValueError as exc:
                    raise ConfigError(
                        f"unknown gate {gate!r}; choose from "
                        f"{[kind.value for kind in GateKind]}"
                    ) from exc
            object.__setattr__(self, "gates", gates)
        if self.layers is not None:
            try:
                layers = tuple(
                    layer
                    if isinstance(layer, MoELayerSpec)
                    else MoELayerSpec(**layer)
                    for layer in self.layers
                )
            except TypeError as exc:
                raise ConfigError(f"malformed layer fields: {exc}") from exc
            object.__setattr__(self, "layers", layers)
            if not self.layers:
                raise ConfigError("'layers' must list at least one layer")
            if (
                self.num_layers is not None
                and len(self.layers) > 1
                and self.num_layers != len(self.layers)
            ):
                raise ConfigError(
                    f"num_layers ({self.num_layers}) disagrees with the "
                    f"{len(self.layers)} explicit layers"
                )
        if self.num_layers is not None and self.num_layers < 1:
            raise ConfigError(
                f"num_layers must be positive, got {self.num_layers}"
            )

    @classmethod
    def of(
        cls, spec: MoELayerSpec, *, num_layers: int = 1
    ) -> "StackSpec":
        """Wrap one in-memory layer spec (programmatic grid building)."""
        return cls(layers=(spec,), num_layers=num_layers)

    @classmethod
    def from_data(cls, data) -> "StackSpec":
        """Parse one stack entry of a spec document.

        Raises:
            ConfigError: for malformed entries or unknown keys.
        """
        if isinstance(data, StackSpec):
            return data
        if not isinstance(data, dict):
            raise ConfigError(f"malformed stack entry {data!r}")
        known = {
            "model", "layers", "batch_size", "seq_len", "num_experts",
            "num_layers", "gates",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown stack entry keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        layers = data.get("layers")
        if layers is not None:
            layers = tuple(layers)
        gates = data.get("gates")
        if gates is not None and not isinstance(gates, str):
            gates = tuple(gates)
        kwargs = {
            k: v for k, v in data.items() if k not in ("layers", "gates")
        }
        return cls(layers=layers, gates=gates, **kwargs)

    def to_data(self) -> dict:
        """Plain-data form (inverse of :meth:`from_data`)."""
        out: dict = {}
        if self.model is not None:
            out["model"] = self.model
            out["batch_size"] = self.batch_size
            out["seq_len"] = self.seq_len
            if self.num_experts is not None:
                out["num_experts"] = self.num_experts
        else:
            out["layers"] = [
                dataclasses.asdict(layer) for layer in self.layers
            ]
        if self.num_layers is not None:
            out["num_layers"] = self.num_layers
        if self.gates is not None:
            out["gates"] = list(self.gates)
        return out

    def resolve_gates(
        self, depth: int, default: GateKind
    ) -> tuple[GateKind, ...]:
        """Per-layer routing functions for a resolved stack of ``depth``.

        Raises:
            ConfigError: when an explicit ``gates`` tuple disagrees with
                the stack depth.
        """
        if self.gates is None:
            return (default,) * depth
        if len(self.gates) == 1:
            return (GateKind(self.gates[0]),) * depth
        if len(self.gates) != depth:
            raise ConfigError(
                f"'gates' lists {len(self.gates)} entries for a stack of "
                f"{depth} layers"
            )
        return tuple(GateKind(gate) for gate in self.gates)

    def resolve(self, parallel: ParallelSpec) -> tuple[MoELayerSpec, ...]:
        """Materialize the stack for one deployment.

        Raises:
            ConfigError: propagated from spec validation (e.g. an expert
                count that does not divide the EP width).
        """
        if self.model is not None:
            preset = get_model_preset(self.model)
            num_experts = (
                self.num_experts
                if self.num_experts is not None
                else parallel.n_ep
            )
            spec = layer_spec_for(
                preset,
                batch_size=self.batch_size,
                seq_len=self.seq_len,
                num_experts=num_experts,
            )
            depth = (
                self.num_layers
                if self.num_layers is not None
                else preset.num_layers
            )
            return (spec,) * depth
        if self.num_layers is not None and len(self.layers) == 1:
            return self.layers * self.num_layers
        return self.layers


@dataclass(frozen=True)
class ExperimentSpec:
    """A full ``clusters x stacks x systems`` experiment grid, as data."""

    clusters: tuple[ClusterRef, ...]
    systems: tuple[str, ...]
    stacks: tuple[StackSpec, ...]
    name: str = "experiment"
    gate: str = GateKind.GSHARD.value
    routing_overhead: float = 1.0
    solver: str = "de"
    r_max: int | None = None
    noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        # a lone string is one entry, not a sequence of characters
        clusters = (
            (self.clusters,) if isinstance(self.clusters, str)
            else self.clusters
        )
        systems = (
            (self.systems,) if isinstance(self.systems, str)
            else self.systems
        )
        stacks = (
            (self.stacks,)
            if isinstance(self.stacks, (StackSpec, dict))
            else self.stacks
        )
        object.__setattr__(
            self,
            "clusters",
            tuple(ClusterRef.from_data(c) for c in clusters),
        )
        object.__setattr__(self, "systems", tuple(systems))
        object.__setattr__(
            self,
            "stacks",
            tuple(StackSpec.from_data(s) for s in stacks),
        )
        if not self.clusters or not self.systems or not self.stacks:
            raise ConfigError(
                "an experiment needs at least one cluster, one system "
                "and one stack"
            )
        try:
            GateKind(self.gate)
        except ValueError as exc:
            raise ConfigError(
                f"unknown gate {self.gate!r}; choose from "
                f"{[kind.value for kind in GateKind]}"
            ) from exc
        if self.solver not in STEP2_SOLVERS:
            raise ConfigError(
                f"unknown solver {self.solver!r}; "
                f"choose from {STEP2_SOLVERS}"
            )

    # -- serialization -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Build a spec from its plain-data document form.

        Raises:
            ConfigError: for unknown keys or malformed entries.
        """
        if not isinstance(data, dict):
            raise ConfigError(f"experiment spec must be a dict, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown experiment keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        for required in ("clusters", "systems", "stacks"):
            if required not in data:
                raise ConfigError(f"experiment spec lacks {required!r}")
        return cls(**data)

    def to_dict(self) -> dict:
        """Plain-data document form (inverse of :meth:`from_dict`)."""
        out: dict = {
            "name": self.name,
            "clusters": [c.to_data() for c in self.clusters],
            "systems": list(self.systems),
            "stacks": [s.to_data() for s in self.stacks],
        }
        defaults = {
            "gate": GateKind.GSHARD.value,
            "routing_overhead": 1.0,
            "solver": "de",
            "r_max": None,
            "noise": 0.0,
            "seed": 0,
        }
        for key, default in defaults.items():
            value = getattr(self, key)
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON spec document.

        Raises:
            ConfigError: for syntactically invalid JSON or a malformed
                document.
        """
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid JSON spec: {exc}") from exc
        return cls.from_dict(data)

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        """Parse a TOML spec document (needs Python 3.11+'s tomllib).

        Raises:
            ConfigError: when TOML support is unavailable.
        """
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise ConfigError(
                "TOML specs need Python 3.11+ (tomllib); "
                "use JSON on this interpreter"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML spec: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.json`` or ``.toml`` file (by suffix)."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            return cls.from_toml(text)
        return cls.from_json(text)

    # -- resolution ----------------------------------------------------------

    @property
    def gate_kind(self) -> GateKind:
        """The routing function as an enum."""
        return GateKind(self.gate)

    def resolve_systems(self) -> tuple[TrainingSystem, ...]:
        """Instantiate every named system through the registry."""
        return tuple(
            get_system(name, r_max=self.r_max, solver=self.solver)
            for name in self.systems
        )

    def resolve(
        self,
    ) -> tuple[
        tuple[tuple[ClusterSpec, ParallelSpec], ...],
        tuple[TrainingSystem, ...],
    ]:
        """Materialize clusters (with standard layouts) and systems."""
        deployments = []
        for ref in self.clusters:
            cluster = ref.resolve()
            parallel = standard_layout(
                cluster.total_gpus, cluster.gpus_per_node
            )
            deployments.append((cluster, parallel))
        return tuple(deployments), self.resolve_systems()
