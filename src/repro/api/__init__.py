"""The unified experiment API: the library's front door.

Three pieces on top of the planner:

* :mod:`~repro.api.workspace` -- :class:`Workspace`, a disk-rooted
  session owning a persistent profile store and a content-addressed
  plan cache (warm re-runs fit zero profiles and compile zero plans,
  assertable via exact hit/miss counters);
* :mod:`~repro.api.spec` -- :class:`ExperimentSpec`, a declarative,
  serializable (dict / JSON / TOML) description of
  ``clusters x stacks x systems`` grids;
* :mod:`~repro.api.registry` -- the cluster registry, completing the
  string-keyed registry layer together with
  :func:`repro.systems.get_system` and
  :func:`repro.models.get_model_preset`.

``python -m repro`` (:mod:`~repro.api.cli`) drives all of it from the
shell.
"""

from .registry import available_clusters, get_cluster, register_cluster
from .spec import ClusterRef, ExperimentSpec, StackSpec
from .workspace import (
    WORKSPACE_SCHEMA_VERSION,
    ExperimentResult,
    Workspace,
    WorkspaceStats,
)

__all__ = [
    "available_clusters",
    "get_cluster",
    "register_cluster",
    "ClusterRef",
    "ExperimentSpec",
    "StackSpec",
    "WORKSPACE_SCHEMA_VERSION",
    "ExperimentResult",
    "Workspace",
    "WorkspaceStats",
]
