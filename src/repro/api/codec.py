"""Lossless JSON codec for the library's frozen spec dataclasses.

The :class:`~repro.api.workspace.Workspace` persists two caches whose
keys and values are the frozen dataclasses the planner already uses as
in-memory cache keys (``ClusterSpec``, ``MoELayerSpec``,
``PerfModelSet``, ``LayerProfile``, ...).  This module turns any such
object -- and tuples/dicts of them -- into plain JSON data and back:

* every registered dataclass encodes as ``{"__dc__": name, "f": {...}}``
  with its fields encoded recursively;
* enums encode as ``{"__enum__": name, "v": value}``;
* tuples encode as ``{"__t__": [...]}`` so they decode back to tuples
  (frozen dataclasses require tuple fields to stay hashable);
* numbers, strings, bools and None pass through (numpy scalars are
  coerced to their exact Python equivalents).

Floats round-trip bit-exactly because ``json`` serializes them with
``repr`` (shortest form that parses back to the same IEEE-754 value), so
a decoded key compares equal to a freshly computed one and a warm cache
genuinely hits.

:func:`digest` canonicalizes an encoded value (sorted keys, no
whitespace) and hashes it -- the content address used for on-disk plan
cache filenames.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import numbers

from ..config import MoELayerSpec, ParallelSpec
from ..core.constraints import PipelineContext
from ..core.perf_model import LinearPerfModel, PerfModelSet
from ..core.profiler import ProfileResult
from ..errors import WorkspaceError
from ..models.configs import ModelPreset
from ..models.transformer import LayerProfile
from ..moe.gates import GateKind
from ..parallel.collectives import A2AAlgorithm
from ..parallel.topology import ClusterSpec, GPUSpec, LinkSpec, NodeSpec
from ..parallel.volumes import LayerVolumes

#: every dataclass the workspace caches may contain, by codec name.
_DATACLASSES = {
    cls.__name__: cls
    for cls in (
        ClusterSpec,
        GPUSpec,
        LinkSpec,
        NodeSpec,
        ParallelSpec,
        MoELayerSpec,
        LinearPerfModel,
        PerfModelSet,
        ProfileResult,
        LayerProfile,
        LayerVolumes,
        PipelineContext,
        ModelPreset,
    )
}

#: every enum the cached objects may contain, by codec name.
_ENUMS = {cls.__name__: cls for cls in (GateKind, A2AAlgorithm)}


def encode(obj) -> object:
    """Encode a supported object as plain JSON data.

    Raises:
        WorkspaceError: for an unsupported type.
    """
    if obj is None or isinstance(obj, (str, bool)):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, enum.Enum):
        name = type(obj).__name__
        if name not in _ENUMS:
            raise WorkspaceError(f"cannot encode unregistered enum {name}")
        return {"__enum__": name, "v": obj.value}
    if isinstance(obj, (tuple, list)):
        return {"__t__": [encode(item) for item in obj]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _DATACLASSES:
            raise WorkspaceError(
                f"cannot encode unregistered dataclass {name}"
            )
        fields = {
            field.name: encode(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {"__dc__": name, "f": fields}
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: str(kv[0]))
        return {"__d__": [[encode(k), encode(v)] for k, v in items]}
    raise WorkspaceError(f"cannot encode object of type {type(obj).__name__}")


def decode(data):
    """Inverse of :func:`encode`.

    Raises:
        WorkspaceError: for malformed data or an unknown type tag (e.g. a
            cache written by a newer library version).
    """
    if data is None or isinstance(data, (str, bool, int, float)):
        return data
    if not isinstance(data, dict):
        raise WorkspaceError(f"malformed codec payload: {data!r}")
    if "__t__" in data:
        return tuple(decode(item) for item in data["__t__"])
    if "__d__" in data:
        return {decode(k): decode(v) for k, v in data["__d__"]}
    if "__enum__" in data:
        cls = _ENUMS.get(data["__enum__"])
        if cls is None:
            raise WorkspaceError(f"unknown enum {data['__enum__']!r}")
        return cls(data["v"])
    if "__dc__" in data:
        cls = _DATACLASSES.get(data["__dc__"])
        if cls is None:
            raise WorkspaceError(f"unknown dataclass {data['__dc__']!r}")
        kwargs = {name: decode(value) for name, value in data["f"].items()}
        return cls(**kwargs)
    raise WorkspaceError(f"malformed codec payload: {data!r}")


def canonical_json(encoded: object) -> str:
    """Deterministic JSON text of an encoded value (content address input)."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def digest(encoded: object) -> str:
    """Content address of an encoded value (sha256 hex, truncated)."""
    text = canonical_json(encoded)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]
