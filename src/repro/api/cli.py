"""``python -m repro``: plan, sweep, bench, serve, report and cache.

Subcommands over the :class:`~repro.api.workspace.Workspace` API:

* ``plan``  -- compile one iteration plan; ``--json`` prints the exact
  :meth:`IterationPlan.to_json` document (replayable bit-identically).
* ``sweep`` -- run a declarative :class:`~repro.api.spec.ExperimentSpec`
  file (JSON or TOML); prints the result table and exact cache
  counters.  ``--expect-warm`` turns "100% cache hits" into an exit
  code, for CI.
* ``bench`` -- evaluate a model preset across systems on a testbed and
  print the speedup table (the Fig. 6 shape, from the shell).
* ``serve`` -- run a coalescing :class:`~repro.serve.PlanService` over
  the workspace: ``--requests FILE`` answers a JSON-lines request
  stream (``-`` for stdin) and prints one JSON result per line;
  ``--demo N`` runs the closed-loop load generator and reports
  coalesced throughput against the serial ``plan()`` loop;
  ``--listen HOST:PORT`` serves the same request schema over TCP
  (priority lanes, shed-with-retry backpressure, graceful drain on
  Ctrl-C) and ``--connect HOST:PORT`` sends a ``--requests`` stream to
  such a server instead of planning locally.
* ``report`` -- regenerate every paper artifact (the full manifest or
  ``--only fig7,table5``) through one workspace, writing
  ``benchmarks/results/*`` plus a generated ``REPORT.md``;
  ``--check`` re-runs the deterministic artifacts and exits non-zero
  on any byte drift against the committed files; ``--trace FILE``
  records per-artifact spans to a JSON-lines trace alongside the
  report.
* ``trace`` -- render a JSON-lines trace file (what ``REPRO_TRACE=``
  and ``report --trace`` write) as an indented span tree with per-span
  total/self times and attributes.
* ``metrics`` -- print a workspace's counters as Prometheus text
  exposition (or ``--json``): the same exact numbers
  ``workspace.stats`` holds, under the ``repro.*`` metric namespace;
  ``--remote HOST:PORT`` scrapes a running ``cache serve`` instead.
* ``docs``  -- regenerate ``docs/CLI.md`` from this very parser
  (``--check`` verifies the committed page instead).
* ``cache`` -- inspect a workspace's cache tiers (plus the process's
  degree-solver counters), ``--gc DAYS``/``--max-bytes``/
  ``--max-entries`` away stale or excess plan files (LRU order),
  ``clear`` everything, or ``cache serve`` a shared remote tier other
  processes warm through.

Every subcommand takes ``--workspace PATH``; without it, ``plan``,
``bench`` and ``serve`` run against a throwaway in-memory session.
Planning subcommands also take ``--remote HOST:PORT`` (or the
``REPRO_CACHE_REMOTE`` environment variable) to read and write plans
through a shared ``cache serve`` tier.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import tempfile
from pathlib import Path

from ..bench.reporting import format_table
from ..bench.runner import speedups_over
from ..config import MoELayerSpec, standard_layout
from ..core.fastsolve import solver_stats
from ..core.gradient_partition import STEP2_SOLVERS
from ..errors import ConfigError, ReproError
from ..models.configs import available_model_presets
from ..moe.gates import GateKind
from ..systems.registry import available_systems, get_system
from .registry import available_clusters
from .spec import ClusterRef, ExperimentSpec, StackSpec
from .workspace import Workspace, WorkspaceStats


def _add_workspace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workspace",
        "-w",
        metavar="PATH",
        default=None,
        help="workspace directory holding the persistent caches",
    )
    parser.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help=(
            "shared remote cache server to read/write through "
            "(defaults to $REPRO_CACHE_REMOTE; empty disables)"
        ),
    )


def _add_knob_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--gate",
        default=GateKind.GSHARD.value,
        choices=[kind.value for kind in GateKind],
        help="routing function for the timing profiles",
    )
    parser.add_argument(
        "--solver",
        default="de",
        choices=list(STEP2_SOLVERS),
        help="FSMoE Step-2 gradient-partition solver",
    )
    parser.add_argument(
        "--r-max", type=int, default=None, help="pipeline-degree cap"
    )
    parser.add_argument(
        "--noise", type=float, default=0.0, help="profiler jitter std-dev"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="profiler RNG seed"
    )


def _add_stack_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default=None,
        help=f"model preset ({', '.join(available_model_presets())})",
    )
    parser.add_argument("--layers", type=int, default=None,
                        help="stack depth (default: preset's, or 1)")
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--seq-len", type=int, default=1024)
    parser.add_argument(
        "--num-experts", type=int, default=None,
        help="experts per layer (default: the deployment's EP width)",
    )
    parser.add_argument("--embed-dim", type=int, default=2048,
                        help="(custom layers only)")
    parser.add_argument("--hidden-scale", type=float, default=4.0,
                        help="(custom layers only)")
    parser.add_argument("--num-heads", type=int, default=16,
                        help="(custom layers only)")
    parser.add_argument("--top-k", type=int, default=2,
                        help="(custom layers only)")
    parser.add_argument(
        "--capacity-factor", type=float, default=1.2,
        help="(custom layers only; <= 0 means no token dropping)",
    )
    parser.add_argument("--ffn-type", default="simple",
                        choices=("simple", "mixtral"),
                        help="(custom layers only)")


def _stack_from_args(args, cluster: ClusterRef) -> StackSpec:
    """Build the stack entry a ``plan``/``bench`` invocation describes."""
    if args.model is not None:
        return StackSpec(
            model=args.model,
            batch_size=args.batch_size,
            seq_len=args.seq_len,
            num_experts=args.num_experts,
            num_layers=args.layers,
        )
    if args.num_experts is not None:
        num_experts = args.num_experts
    else:
        # same default the model-preset path uses: the deployment's EP
        # width (paper §6.4: one expert per node)
        resolved = cluster.resolve()
        num_experts = resolved.num_nodes
    capacity = args.capacity_factor
    layer = MoELayerSpec(
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        embed_dim=args.embed_dim,
        hidden_scale=args.hidden_scale,
        num_experts=num_experts,
        top_k=args.top_k,
        capacity_factor=capacity if capacity > 0 else None,
        num_heads=args.num_heads,
        ffn_type=args.ffn_type,
    )
    return StackSpec(layers=(layer,), num_layers=args.layers or 1)


def _spec_from_args(args, systems: list[str]) -> ExperimentSpec:
    cluster = ClusterRef(name=args.cluster, total_gpus=args.gpus)
    return ExperimentSpec(
        name="cli",
        clusters=(cluster,),
        systems=tuple(systems),
        stacks=(_stack_from_args(args, cluster),),
        gate=args.gate,
        solver=args.solver,
        r_max=args.r_max,
        noise=args.noise,
        seed=args.seed,
    )


def _open_workspace(args, stack: "object") -> Workspace:
    """The named workspace, or a throwaway one for session-only runs."""
    remote = getattr(args, "remote", None)
    trace = getattr(args, "trace", None)
    if args.workspace is not None:
        return Workspace(args.workspace, remote=remote, trace=trace)
    tmp = tempfile.TemporaryDirectory(prefix="repro-ws-")
    stack.callback(tmp.cleanup)  # type: ignore[attr-defined]
    return Workspace(tmp.name, autosave=False, remote=remote, trace=trace)


def _print_cache_summary(stats: WorkspaceStats, out) -> None:
    profiles = stats.profiles
    for label, hits, misses in (
        ("profile cache", profiles.hits, profiles.misses),
        ("plan cache", stats.plan_hits, stats.plan_misses),
    ):
        total = hits + misses
        rate = 100.0 * hits / total if total else 100.0
        print(
            f"{label}: {hits} hits, {misses} misses ({rate:.0f}% hit rate)",
            file=out,
        )
    cache = stats.cache
    print(
        f"cache tiers: L1 {cache.l1.hits}h/{cache.l1.misses}m, "
        f"L2 {cache.l2.hits}h/{cache.l2.misses}m, "
        f"L3 {cache.l3.hits}h/{cache.l3.misses}m "
        f"({cache.l1.fills + cache.l2.fills} fills, "
        f"{cache.l1.evictions} evictions)",
        file=out,
    )
    solver = stats.solver
    print(
        f"degree solver: {solver.solves} solves, {solver.cache_hits} cache "
        f"hits, {solver.batch_calls} batch calls "
        f"(largest batch {solver.max_batch_size})",
        file=out,
    )
    print(
        f"step2 solver: {solver.step2_objective_calls} objective calls, "
        f"{solver.step2_candidates} candidates",
        file=out,
    )


def _flush_trace(workspace: Workspace, out) -> None:
    """Flush the workspace's trace file (if any) and say where it is."""
    tracer = workspace.tracer
    if tracer is None or tracer.path is None:
        return
    tracer.close()
    note = f"trace: {tracer.path}"
    if tracer.dropped:
        note += f" ({tracer.dropped} span(s) dropped at the buffer bound)"
    print(note, file=out)


def _cmd_plan(args) -> int:
    with contextlib.ExitStack() as resources:
        workspace = _open_workspace(args, resources)
        spec = _spec_from_args(args, [args.system])
        result = workspace.sweep(spec, max_workers=1)
        point = result.points[0]
        plan = point.plan
        # The JSON document goes to stdout *alone* so it can be piped
        # straight into IterationPlan.from_json; counters go to stderr.
        if args.json:
            print(plan.to_json(indent=2))
            _print_cache_summary(workspace.stats, sys.stderr)
        else:
            print(f"system:    {plan.name}")
            print(f"cluster:   {point.cluster.name}")
            print(f"layers:    {plan.num_layers}")
            print(f"degrees:   {plan.degrees}")
            print(f"makespan:  {point.makespan_ms:.3f} ms")
            _print_cache_summary(workspace.stats, sys.stdout)
    return 0


def _cmd_sweep(args) -> int:
    spec = ExperimentSpec.from_file(args.spec)
    remote = getattr(args, "remote", None)
    if args.workspace:
        workspace = Workspace(args.workspace, remote=remote)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-ws-") as tmp:
            workspace = Workspace(tmp, autosave=False, remote=remote)
            return _run_sweep(args, spec, workspace)
    return _run_sweep(args, spec, workspace)


def _run_sweep(args, spec: ExperimentSpec, workspace: Workspace) -> int:
    result = workspace.sweep(spec, max_workers=args.max_workers)
    if args.json:
        print(json.dumps(result.rows(), indent=2))
    else:
        rows = [
            [
                str(row["cluster"]),
                str(row["system"]),
                f"{row['num_layers']}",
                f"B={row['batch_size']} L={row['seq_len']} "
                f"M={row['embed_dim']} E={row['num_experts']}",
                f"{row['makespan_ms']:.2f}",
            ]
            for row in result.rows()
        ]
        print(
            format_table(
                ["cluster", "system", "layers", "shape", "makespan (ms)"],
                rows,
                title=f"sweep '{spec.name}': {len(result)} points",
            )
        )
    stats = workspace.stats
    _print_cache_summary(stats, sys.stdout)
    _flush_trace(workspace, sys.stderr)
    if args.expect_warm and not stats.warm:
        print(
            "error: --expect-warm but the run was not fully cached "
            f"({stats.profiles.misses} profile misses, "
            f"{stats.plan_misses} plan misses)",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_bench(args) -> int:
    systems = [name.strip() for name in args.systems.split(",") if name.strip()]
    with contextlib.ExitStack() as resources:
        workspace = _open_workspace(args, resources)
        spec = _spec_from_args(args, systems)
        result = workspace.sweep(spec, max_workers=args.max_workers)
        case = result.config_results()[0]
        speedups = speedups_over([case], args.baseline)
        rows = [
            [
                name,
                f"{case.times_ms[name]:.1f}",
                f"{speedups[name]:.2f}x",
            ]
            for name in case.times_ms
        ]
        print(
            format_table(
                ["system", "iteration (ms)", f"speedup vs {args.baseline}"],
                rows,
                title=(
                    f"bench: {args.model or 'custom layer'} on "
                    f"{result.points[0].cluster.name}"
                ),
            )
        )
        _print_cache_summary(workspace.stats, sys.stdout)
    return 0


def _parse_request_line(line: str, line_no: int):
    """One JSON-lines serve request -> ``(payload, PlanRequest)``.

    Delegates the payload schema to
    :func:`repro.serve.protocol.parse_plan_payload` -- the same parser
    the network server runs -- and keeps only the line-number context;
    the raw payload rides along for ``--connect``, which ships it
    verbatim instead of resolving locally.

    Raises:
        ConfigError: for invalid JSON or a malformed request document.
    """
    from ..serve.protocol import parse_plan_payload

    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ConfigError(
            f"request line {line_no}: invalid JSON: {exc}"
        ) from exc
    try:
        return data, parse_plan_payload(data)
    except ConfigError as exc:
        raise ConfigError(f"request line {line_no}: {exc}") from exc


def _print_service_stats(stats, out) -> None:
    print(
        f"service: {stats.requests} requests, {stats.resolved} resolved, "
        f"{stats.dedup_hits} dedup hits ({100.0 * stats.dedup_rate:.0f}%), "
        f"{stats.batches} batches (largest {stats.max_batch}, mean "
        f"{stats.mean_batch:.1f}), latency p50 {stats.p50_latency_ms:.2f} ms "
        f"/ p95 {stats.p95_latency_ms:.2f} ms",
        file=out,
    )


def _cmd_serve(args) -> int:
    from ..serve import (
        PlanService,
        duplicate_heavy_requests,
        run_serial_session,
        run_service,
    )

    modes = [
        args.requests is not None,
        args.demo is not None,
        args.listen is not None,
    ]
    if sum(modes) != 1:
        print(
            "error: serve needs exactly one of --requests, --demo "
            "and --listen",
            file=sys.stderr,
        )
        return 2
    if args.connect is not None and args.requests is None:
        print(
            "error: --connect sends a --requests stream; give it one",
            file=sys.stderr,
        )
        return 2

    if args.listen is not None:
        return _serve_listen(args)

    if args.demo is not None:
        requests = duplicate_heavy_requests(
            total=args.demo, distinct=args.distinct
        )
        with contextlib.ExitStack() as resources:
            if args.workspace is not None:
                base = Path(args.workspace).expanduser()
            else:
                tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
                resources.callback(tmp.cleanup)
                base = Path(tmp.name)
            serial = run_serial_session(requests, base / "demo-serial")
            served = run_service(
                requests,
                base / "demo-service",
                flush_ms=args.flush_ms,
                capacity=args.capacity,
                workers=args.workers,
            )
        identical = all(
            a.to_json() == b.to_json()
            for a, b in zip(serial.plans, served.plans)
        )
        speedup = serial.wall_s / served.wall_s if served.wall_s else 0.0
        print(
            f"demo: {len(requests)} requests, {args.distinct} distinct\n"
            f"serial plan() loop: {serial.wall_s * 1e3:.1f} ms "
            f"({serial.throughput_rps:.0f} req/s)\n"
            f"coalescing service: {served.wall_s * 1e3:.1f} ms "
            f"({served.throughput_rps:.0f} req/s)\n"
            f"speedup: {speedup:.1f}x, plans bit-identical: {identical}"
        )
        _print_service_stats(served.stats, sys.stdout)
        return 0 if identical else 1

    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        lines = Path(args.requests).read_text().splitlines()
    parsed = [
        _parse_request_line(line, i + 1)
        for i, line in enumerate(lines)
        if line.strip()
    ]

    if args.connect is not None:
        return _serve_connect(args, [payload for payload, _ in parsed])

    with contextlib.ExitStack() as resources:
        workspace = _open_workspace(args, resources)
        service = PlanService(
            workspace,
            flush_ms=args.flush_ms,
            capacity=args.capacity,
            workers=args.workers,
        )
        resources.callback(service.close)
        futures = [
            (request.cluster, service.submit(request))
            for _, request in parsed
        ]
        for index, (cluster, future) in enumerate(futures):
            plan = future.result()
            print(
                json.dumps(
                    {
                        "index": index,
                        "system": plan.name,
                        "cluster": cluster.name,
                        "num_layers": plan.num_layers,
                        "degrees": plan.degrees,
                        "makespan_ms": plan.makespan_ms(),
                    }
                )
            )
        _print_service_stats(service.stats_snapshot(), sys.stderr)
    return 0


def _serve_listen(args) -> int:
    """``serve --listen``: a NetServer in the foreground until a signal.

    SIGINT (Ctrl-C) and SIGTERM (systemd/k8s/CI shutdown) both trigger
    the same graceful drain; SIGTERM matters because shells start
    backgrounded jobs with SIGINT ignored.
    """
    import signal
    import threading

    from ..cache.remote import parse_address
    from ..serve import NetServer

    host, port = parse_address(args.listen)
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = signal.signal(signal.SIGTERM, _request_stop)
    try:
        with contextlib.ExitStack() as resources:
            workspace = _open_workspace(args, resources)
            server = NetServer(
                workspace,
                host=host,
                port=port,
                flush_ms=args.flush_ms,
                capacity=args.capacity,
                workers=args.workers,
            )
            resources.callback(server.close)
            address = server.start()
            print(f"plan server listening on {address}", flush=True)
            try:
                while not stop.is_set():
                    if server.wait(timeout_s=0.2):
                        break
            except KeyboardInterrupt:
                pass
            print("draining...", file=sys.stderr, flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def _serve_connect(args, payloads: list) -> int:
    """``serve --connect``: the request stream against a remote server."""
    from ..errors import ServiceError
    from ..serve import NetClient

    with contextlib.closing(NetClient(args.connect)) as client:
        for index, payload in enumerate(payloads):
            try:
                response = client.plan(payload, priority=args.priority)
            except ServiceError as exc:
                print(
                    f"error: request {index}: {exc}", file=sys.stderr
                )
                return 1
            print(json.dumps({"index": index, **response["result"]}))
        stats = client.stats()
        service = stats.get("service", {})
        net = stats.get("net", {})
        print(
            f"server: {net.get('requests', 0)} wire requests, "
            f"{service.get('resolved', 0)} resolved, "
            f"{service.get('dedup_hits', 0)} dedup hits",
            file=sys.stderr,
        )
    return 0


def _cmd_report(args) -> int:
    from ..report import (
        ReportConfig,
        check_run,
        default_results_dir,
        render_report,
        run_report,
        select_artifacts,
        write_outputs,
    )

    if args.list:
        artifacts = select_artifacts(args.only)
        rows = [
            [
                artifact.name,
                artifact.paper_ref,
                ", ".join(artifact.outputs),
                "yes" if artifact.deterministic else "no",
            ]
            for artifact in artifacts
        ]
        print(
            format_table(
                ["artifact", "paper ref", "outputs", "checked"],
                rows,
                title=f"manifest: {len(artifacts)} artifact(s)",
            )
        )
        return 0

    env = ReportConfig.from_env()
    config = ReportConfig(
        full=args.full or env.full,
        solver=args.solver if args.solver is not None else env.solver,
        smoke=env.smoke,
    )
    results_dir = (
        Path(args.results_dir) if args.results_dir else default_results_dir()
    )
    if results_dir is None:
        print(
            "error: cannot locate benchmarks/results (the `benchmarks` "
            "package is not importable); pass --results-dir",
            file=sys.stderr,
        )
        return 2

    only = args.only
    if args.check and (config.full or config.solver is not None):
        # The committed files were produced under the default config; a
        # --full or non-default-solver re-run would "drift" on every
        # file for configuration reasons, not reproducibility ones.
        print(
            "error: --check compares against the committed "
            "default-configuration files; drop --full/--solver (and "
            "unset REPRO_BENCH_FULL/REPRO_BENCH_SOLVER)",
            file=sys.stderr,
        )
        return 2
    if args.check:
        # --check verifies byte-reproducibility; artifacts that embed
        # wall-clock measurements cannot drift meaningfully, so running
        # them would burn minutes verifying nothing.
        checkable = [
            artifact.name
            for artifact in select_artifacts(only)
            if artifact.deterministic
        ]
        if not checkable:
            print(
                "error: --check selected no deterministic artifacts "
                "(see `repro report --list`)",
                file=sys.stderr,
            )
            return 2
        only = checkable

    with contextlib.ExitStack() as resources:
        workspace = _open_workspace(args, resources)
        run = run_report(
            workspace,
            config,
            only=only,
            progress=lambda line: print(line, file=sys.stderr),
            jobs=args.jobs,
        )
        _flush_trace(workspace, sys.stderr)

    if args.check:
        drifts = check_run(run, results_dir)
        checked = sum(
            len(record.result.outputs)
            for record in run.runs
            if record.artifact.deterministic
        )
        if drifts:
            for drift in drifts:
                print(f"drift: {drift}", file=sys.stderr)
            print(
                f"error: {len(drifts)} of {checked} checked file(s) "
                f"drifted from {results_dir}",
                file=sys.stderr,
            )
            return 1
        print(
            f"report check passed: {checked} file(s) byte-identical to "
            f"{results_dir}"
        )
        return 0

    written = write_outputs(run, results_dir)
    report_path = (
        Path(args.report_file)
        if args.report_file
        else results_dir.parent / "REPORT.md"
    )
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(
        render_report(run, include_timings=not args.no_timings)
    )
    print(
        f"wrote {len(written)} artifact file(s) to {results_dir} and "
        f"{report_path} in {run.wall_s:.1f} s"
    )
    _print_cache_summary(workspace.stats, sys.stdout)
    return 0


def _cmd_docs(args) -> int:
    from ..report.clidoc import render_cli_markdown

    rendered = render_cli_markdown()
    path = Path(args.out)
    if args.check:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 1
        if path.read_text() != rendered:
            print(
                f"error: {path} is stale; regenerate it with "
                f"`python -m repro docs`",
                file=sys.stderr,
            )
            return 1
        print(f"{path} matches the parser")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rendered)
    print(f"wrote {path}")
    return 0


def _cmd_trace(args) -> int:
    """Render a JSON-lines trace file as an indented span tree."""
    from ..obs import canonical_tree, read_trace, render_tree

    records = read_trace(args.file)
    if not records:
        print(f"error: {args.file} holds no spans", file=sys.stderr)
        return 1
    if args.canonical:
        print(json.dumps(canonical_tree(records), indent=2, sort_keys=True))
    else:
        print(
            render_tree(records, include_timings=not args.no_timings)
        )
    return 0


def _cmd_metrics(args) -> int:
    """Print exact counters as Prometheus exposition (or JSON)."""
    from ..obs import render_json, render_prometheus, workspace_metrics

    if args.remote is not None and args.workspace is None:
        # Scrape a running `cache serve` over its own line protocol;
        # the server renders its exposition itself.
        from ..cache import RemoteTier

        exposition = RemoteTier(args.remote).metrics()
        if exposition is None:
            print(
                f"error: cache server {args.remote} unreachable",
                file=sys.stderr,
            )
            return 2
        print(exposition, end="")
        return 0
    if args.workspace is None:
        print(
            "error: metrics needs --workspace PATH (or --remote "
            "HOST:PORT to scrape a cache server)",
            file=sys.stderr,
        )
        return 2
    root = Path(args.workspace).expanduser()
    if not root.is_dir():
        # Like `cache info`: a mistyped path must not silently
        # materialize an empty workspace and report zeros as real.
        print(f"error: no workspace at {root}", file=sys.stderr)
        return 2
    with contextlib.ExitStack() as resources:
        workspace = _open_workspace(args, resources)
        if args.spec is not None:
            # Exercise the workspace first so the session counters are
            # live numbers, not the zeros of a fresh open.
            spec = ExperimentSpec.from_file(args.spec)
            workspace.sweep(spec, max_workers=1)
        samples = workspace_metrics(workspace.stats).snapshot()
        if args.json:
            print(render_json(samples))
        else:
            print(render_prometheus(samples), end="")
        _flush_trace(workspace, sys.stderr)
    return 0


def _cmd_cache_serve(args) -> int:
    """Run a blocking shared cache server (the L3 tier)."""
    from ..cache import CacheServer

    server = CacheServer(
        args.host,
        args.port,
        max_entries=args.max_entries if args.max_entries else 4096,
        max_bytes=args.max_bytes if args.max_bytes else 256 * 1024 * 1024,
    )
    # The address line goes first and flushed, so scripts (and the
    # benchmarks) can read the bound port before any traffic arrives.
    print(f"cache server listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.close()
    return 0


def _cmd_cache(args) -> int:
    if args.action == "serve":
        return _cmd_cache_serve(args)
    gc_requested = (
        args.gc is not None
        or args.max_bytes is not None
        or args.max_entries is not None
    )
    if args.action == "clear" and gc_requested:
        # Refuse the ambiguous combination: `clear` wipes everything,
        # `--gc` promises age-bounded eviction -- silently doing either
        # would betray the other's contract.
        print(
            "error: --gc cannot be combined with 'clear' "
            "(use `cache --gc DAYS --max-bytes N --max-entries N` "
            "for bounded eviction)",
            file=sys.stderr,
        )
        return 2
    if args.workspace is None:
        print(
            f"error: cache {args.action} needs --workspace PATH",
            file=sys.stderr,
        )
        return 2
    if args.action == "clear":
        # File-level discard: must work even on caches a plain open would
        # refuse (schema-version mismatch) -- this IS the recovery path.
        removed = Workspace.discard(args.workspace)
        print(
            f"cleared {removed['profiles']} profile file(s) and "
            f"{removed['plans']} plan file(s) from {args.workspace}"
        )
        return 0
    root = Path(args.workspace).expanduser()
    if not root.is_dir():
        print(f"error: no workspace at {root}", file=sys.stderr)
        return 2
    if gc_requested:
        # File-level like `clear`: trims workspaces a plain open would
        # refuse, and never rewrites surviving plans' mtimes.
        swept = Workspace.gc_plans(
            root,
            max_age_days=args.gc,
            max_bytes=args.max_bytes,
            max_entries=args.max_entries,
        )
        if args.gc is not None:
            print(
                f"gc: removed {swept['removed']} plan file(s) older than "
                f"{args.gc:g} day(s), kept {swept['kept']}"
            )
        else:
            print(
                f"gc: removed {swept['removed']} plan file(s) in LRU "
                f"order, kept {swept['kept']}"
            )
        print(
            f"gc: evicted {swept['removed_bytes']} bytes, kept "
            f"{swept['kept_bytes']} bytes"
        )
        return 0
    # info is read-only: a mistyped path must not silently materialize an
    # empty workspace and report it as real
    info = Workspace(root, remote=args.remote).cache_info()
    for key, value in info.items():
        print(f"{key}: {value}")
    if args.remote:
        from ..cache import RemoteTier

        stat = RemoteTier(args.remote).stat()
        if stat is None:
            print(f"remote_tier: {args.remote} unreachable")
        else:
            print(
                f"remote_tier: {stat.get('entries', 0)} entries, "
                f"{stat.get('bytes', 0)} bytes, {stat.get('hits', 0)} "
                f"hits, {stat.get('misses', 0)} misses"
            )
    solver = solver_stats()
    print(
        f"degree_solver: {solver.solves} solves, {solver.cache_hits} "
        f"cache hits, {solver.batch_calls} batch calls "
        f"(largest batch {solver.max_batch_size})"
    )
    print(
        f"step2_solver: {solver.step2_objective_calls} objective calls, "
        f"{solver.step2_candidates} candidates"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser(
        "plan", help="compile one iteration plan (optionally as JSON)"
    )
    plan.add_argument(
        "--cluster",
        "-c",
        required=True,
        help=f"cluster name ({', '.join(available_clusters())}, ...)",
    )
    plan.add_argument("--gpus", type=int, default=None,
                      help="scale the cluster to this many GPUs")
    plan.add_argument(
        "--system",
        "-s",
        required=True,
        help=f"system name ({', '.join(available_systems())})",
    )
    _add_stack_args(plan)
    _add_knob_args(plan)
    _add_workspace_arg(plan)
    plan.add_argument(
        "--json",
        action="store_true",
        help="print the plan's JSON document on stdout (nothing else)",
    )
    plan.set_defaults(func=_cmd_plan)

    sweep = sub.add_parser(
        "sweep", help="run an ExperimentSpec file (JSON or TOML)"
    )
    sweep.add_argument("spec", help="path to the experiment spec document")
    _add_workspace_arg(sweep)
    sweep.add_argument("--max-workers", type=int, default=None)
    sweep.add_argument(
        "--json", action="store_true", help="print rows as JSON"
    )
    sweep.add_argument(
        "--expect-warm",
        action="store_true",
        help="exit 3 unless every profile and plan came from cache",
    )
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench", help="compare systems on one workload (speedup table)"
    )
    bench.add_argument("--cluster", "-c", required=True)
    bench.add_argument("--gpus", type=int, default=None)
    bench.add_argument(
        "--systems",
        default="dsmoe,tutel,tutel-improved,pipemoe-lina,fsmoe-no-iio,fsmoe",
        help="comma-separated system names",
    )
    bench.add_argument(
        "--baseline", default="DS-MoE", help="display name to normalize by"
    )
    _add_stack_args(bench)
    _add_knob_args(bench)
    _add_workspace_arg(bench)
    bench.add_argument("--max-workers", type=int, default=None)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="serve concurrent plan requests (coalescing + dedup)",
    )
    serve.add_argument(
        "--requests",
        metavar="FILE",
        default=None,
        help="JSON-lines request stream ('-' reads stdin); one result "
             "object is printed per request, in input order",
    )
    serve.add_argument(
        "--demo",
        type=int,
        metavar="N",
        default=None,
        help="run the closed-loop load generator with N requests and "
             "report coalesced throughput vs the serial plan() loop",
    )
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        default=None,
        help="serve the JSON-lines wire protocol over TCP (port 0 "
             "picks a free port, printed on startup) until interrupted; "
             "Ctrl-C drains gracefully",
    )
    serve.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="send the --requests stream to a --listen server instead "
             "of planning locally",
    )
    serve.add_argument(
        "--priority",
        choices=["interactive", "batch"],
        default="interactive",
        help="lane for --connect requests",
    )
    serve.add_argument(
        "--distinct", type=int, default=4,
        help="distinct requests in the --demo stream",
    )
    serve.add_argument(
        "--flush-ms", type=float, default=2.0,
        help="coalescer flush window in milliseconds",
    )
    serve.add_argument(
        "--capacity", type=int, default=4096,
        help="bound on the undrained request backlog",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="threads resolving a batch's distinct requests",
    )
    _add_workspace_arg(serve)
    serve.set_defaults(func=_cmd_serve)

    report = sub.add_parser(
        "report",
        help="regenerate every paper artifact (or verify with --check)",
    )
    report.add_argument(
        "--only",
        metavar="LIST",
        default=None,
        help="comma-separated artifact names (see --list); default: all",
    )
    report.add_argument(
        "--list",
        action="store_true",
        help="list the manifest (names, paper refs, files) and exit",
    )
    report.add_argument(
        "--check",
        action="store_true",
        help="re-run the deterministic artifacts and exit 1 on any byte "
             "drift against the committed result files (writes nothing)",
    )
    report.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grids (equivalent to REPRO_BENCH_FULL=1)",
    )
    report.add_argument(
        "--solver",
        default=None,
        choices=list(STEP2_SOLVERS),
        help="FSMoE Step-2 solver override for the big sweeps",
    )
    report.add_argument(
        "--results-dir",
        metavar="PATH",
        default=None,
        help="artifact directory (default: the repo's benchmarks/results)",
    )
    report.add_argument(
        "--report-file",
        metavar="PATH",
        default=None,
        help="where to write REPORT.md (default: next to the results dir)",
    )
    report.add_argument(
        "--no-timings",
        action="store_true",
        help="omit wall-clock columns from REPORT.md (byte-stable "
             "output: re-runs of an unchanged tree produce no diff)",
    )
    report.add_argument(
        "--jobs",
        metavar="N",
        type=int,
        default=1,
        help="produce parallel-safe artifacts with N concurrent threads "
             "through the shared workspace (outputs and ordering are "
             "identical to a serial run); default: 1",
    )
    report.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="append per-artifact spans to this JSON-lines trace file "
             "(render it with `repro trace FILE`)",
    )
    _add_workspace_arg(report)
    report.set_defaults(func=_cmd_report)

    trace = sub.add_parser(
        "trace",
        help="render a JSON-lines trace file as a span tree",
    )
    trace.add_argument(
        "file",
        help="trace file written by REPRO_TRACE= or `report --trace`",
    )
    trace.add_argument(
        "--no-timings",
        action="store_true",
        help="omit the total/self time columns (attribute-stable output)",
    )
    trace.add_argument(
        "--canonical",
        action="store_true",
        help="print the canonical span tree as JSON (ids and timings "
             "stripped; byte-identical across runs of the same workload)",
    )
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="print exact workspace counters as Prometheus exposition",
    )
    _add_workspace_arg(metrics)
    metrics.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="run this ExperimentSpec through the workspace first, so "
             "the session counters are live numbers",
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="print the metrics snapshot as JSON instead of exposition",
    )
    metrics.set_defaults(func=_cmd_metrics)

    docs = sub.add_parser(
        "docs",
        help="regenerate docs/CLI.md from this parser (or verify --check)",
    )
    docs.add_argument(
        "--out",
        metavar="PATH",
        default="docs/CLI.md",
        help="where the generated CLI reference lives",
    )
    docs.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the committed page differs from a fresh render",
    )
    docs.set_defaults(func=_cmd_docs)

    cache = sub.add_parser(
        "cache",
        help=(
            "inspect, trim or clear a workspace's caches, or run the "
            "shared cache server"
        ),
    )
    cache.add_argument(
        "action",
        nargs="?",
        default="info",
        choices=("info", "clear", "serve"),
    )
    cache.add_argument("--workspace", "-w", metavar="PATH", default=None)
    cache.add_argument(
        "--remote",
        metavar="HOST:PORT",
        default=None,
        help="also report the shared remote tier's occupancy (info)",
    )
    cache.add_argument(
        "--gc",
        type=float,
        metavar="DAYS",
        default=None,
        help="evict plan files not used in DAYS days",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        default=None,
        help=(
            "with --gc/alone: evict least recently used plan files "
            "until under N bytes; with serve: the server's byte bound"
        ),
    )
    cache.add_argument(
        "--max-entries",
        type=int,
        metavar="N",
        default=None,
        help=(
            "with --gc/alone: evict least recently used plan files "
            "until at most N remain; with serve: the server's entry "
            "bound"
        ),
    )
    cache.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address of the cache server",
    )
    cache.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve: bind port (0 picks a free one, printed on start)",
    )
    cache.set_defaults(func=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro trace FILE | head` closes stdout early; exit the way
        # POSIX filters do, and point the interpreter's shutdown flush
        # at devnull so it cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
