"""String-keyed registry of cluster presets.

Completes the registry layer (systems in
:mod:`repro.systems.registry`, model presets in
:mod:`repro.models.configs`) so an
:class:`~repro.api.spec.ExperimentSpec` can name its target clusters
without importing topology factories.  The paper's testbeds are
pre-registered under ``"A"``/``"B"`` (aliases ``"testbed-a"`` /
``"testbed-b"``).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..naming import Registry
from ..parallel.topology import ClusterSpec, testbed_a, testbed_b

_REGISTRY: Registry[ClusterSpec] = Registry("cluster")


def register_cluster(
    key: str,
    factory: Callable[[], ClusterSpec] | ClusterSpec,
    *,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a cluster under a string key.

    Args:
        key: lookup name (normalized case-insensitively).
        factory: zero-argument callable returning a
            :class:`~repro.parallel.topology.ClusterSpec`, or a spec
            itself (frozen, so sharing one instance is safe).
        aliases: additional lookup names.
        overwrite: allow replacing an existing registration.

    Raises:
        RegistryError: when a name is already taken and ``overwrite`` is
            False.
    """
    if isinstance(factory, ClusterSpec):
        spec = factory
        factory = lambda: spec  # noqa: E731 - tiny closure, frozen spec
    _REGISTRY.register(key, factory, aliases=aliases, overwrite=overwrite)


def available_clusters() -> tuple[str, ...]:
    """Canonical keys of every registered cluster, sorted."""
    return _REGISTRY.available()


def get_cluster(name: str, *, total_gpus: int | None = None) -> ClusterSpec:
    """Materialize a registered cluster by name.

    Args:
        name: registry key or alias.
        total_gpus: optionally scale the cluster down to a whole-node
            subset (Fig. 7's varied-P scenario), via
            :meth:`~repro.parallel.topology.ClusterSpec.scaled_to`.

    Raises:
        RegistryError: for an unknown name.
    """
    cluster = _REGISTRY.lookup(name)()
    if total_gpus is not None:
        cluster = cluster.scaled_to(total_gpus)
    return cluster


register_cluster("a", testbed_a, aliases=("testbed-a",))
register_cluster("b", testbed_b, aliases=("testbed-b",))
