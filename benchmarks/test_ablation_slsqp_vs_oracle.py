"""Ablation: Algorithm 1's SLSQP search vs a brute-force integer sweep.

The paper reports the SLSQP solve takes 193 ms per configuration on
average and treats its output as near-optimal.  This benchmark measures
both the runtime and the optimality gap of our implementation against the
exhaustive integer oracle over the configuration grid.  (Its output
table embeds measured solve times, so the artifact is registered as
non-deterministic and skipped by ``repro report --check``.)
"""

from __future__ import annotations

import time

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench import configured_layer_grid, format_table
from repro.core.pipeline_degree import (
    _find_optimal_cached,
    find_optimal_pipeline_degree,
    oracle_integer_degree,
)
from repro.report import ArtifactResult, ReportConfig


def compare(cluster, store, stride):
    """Per-config SLSQP gap and solve time against the integer oracle."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = store.models(cluster, parallel)
    specs = configured_layer_grid(
        "B", num_experts=cluster.num_nodes, stride=stride
    )
    gaps = []
    elapsed = []
    matches = 0
    for spec in specs:
        profile = store.layer_profile(spec, parallel, models)
        _find_optimal_cached.cache_clear()
        start = time.perf_counter()
        # Explicitly pin the SLSQP path: the process default is the
        # batched exact sweep, which IS the oracle.
        slsqp = find_optimal_pipeline_degree(profile.ctx_bw, solver="slsqp")
        elapsed.append((time.perf_counter() - start) * 1000.0)
        oracle = oracle_integer_degree(profile.ctx_bw)
        gaps.append(slsqp.time_ms / oracle.time_ms)
        if slsqp.degree == oracle.degree:
            matches += 1
    return specs, gaps, elapsed, matches


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the SLSQP-vs-oracle comparison table."""
    cluster = get_cluster("B")
    stride = 9 if config.full else 54
    specs, gaps, elapsed, matches = compare(cluster, workspace.store, stride)
    worst_gap = max(gaps)
    mean_ms = sum(elapsed) / len(elapsed)
    table = format_table(
        ["metric", "value", "paper"],
        [
            ["configs checked", str(len(specs)), "1458"],
            ["exact degree matches", f"{matches}/{len(specs)}", "-"],
            ["worst time ratio vs oracle", f"{worst_gap:.4f}", "~1.0"],
            ["mean SLSQP solve (ms)", f"{mean_ms:.1f}", "193"],
        ],
        title="Ablation -- Algorithm 1 (SLSQP) vs integer-sweep oracle",
    )
    return ArtifactResult(
        artifact="slsqp-vs-oracle",
        outputs={"ablation_slsqp_vs_oracle.txt": table + "\n"},
        data={"worst_gap": worst_gap, "mean_ms": mean_ms},
    )


def test_slsqp_vs_oracle(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    assert result.data["worst_gap"] < 1.05  # near-optimal everywhere
    assert result.data["mean_ms"] < 1000.0  # stays cheap (paper: 193 ms)
