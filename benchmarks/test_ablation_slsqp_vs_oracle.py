"""Ablation: Algorithm 1's SLSQP search vs a brute-force integer sweep.

The paper reports the SLSQP solve takes 193 ms per configuration on
average and treats its output as near-optimal.  This benchmark measures
both the runtime and the optimality gap of our implementation against the
exhaustive integer oracle over the configuration grid.
"""

from __future__ import annotations

import time

from repro import standard_layout
from repro.bench import configured_layer_grid, format_table
from repro.core.pipeline_degree import (
    _find_optimal_cached,
    find_optimal_pipeline_degree,
    oracle_integer_degree,
)
from repro.models import profile_layer

from .conftest import full_run


def compare(cluster, models, stride):
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    specs = configured_layer_grid(
        "B", num_experts=cluster.num_nodes, stride=stride
    )
    gaps = []
    elapsed = []
    matches = 0
    for spec in specs:
        profile = profile_layer(spec, parallel, models)
        _find_optimal_cached.cache_clear()
        start = time.perf_counter()
        # Explicitly pin the SLSQP path: the process default is the
        # batched exact sweep, which IS the oracle.
        slsqp = find_optimal_pipeline_degree(profile.ctx_bw, solver="slsqp")
        elapsed.append((time.perf_counter() - start) * 1000.0)
        oracle = oracle_integer_degree(profile.ctx_bw)
        gaps.append(slsqp.time_ms / oracle.time_ms)
        if slsqp.degree == oracle.degree:
            matches += 1
    return specs, gaps, elapsed, matches


def test_slsqp_vs_oracle(cluster_b, models_b, emit, benchmark):
    stride = 9 if full_run() else 54
    specs, gaps, elapsed, matches = benchmark.pedantic(
        compare, args=(cluster_b, models_b, stride), rounds=1, iterations=1
    )
    worst_gap = max(gaps)
    mean_ms = sum(elapsed) / len(elapsed)
    table = format_table(
        ["metric", "value", "paper"],
        [
            ["configs checked", str(len(specs)), "1458"],
            ["exact degree matches", f"{matches}/{len(specs)}", "-"],
            ["worst time ratio vs oracle", f"{worst_gap:.4f}", "~1.0"],
            ["mean SLSQP solve (ms)", f"{mean_ms:.1f}", "193"],
        ],
        title="Ablation -- Algorithm 1 (SLSQP) vs integer-sweep oracle",
    )
    emit("ablation_slsqp_vs_oracle", table)

    assert worst_gap < 1.05  # near-optimal everywhere
    assert mean_ms < 1000.0  # the solve stays cheap (paper: 193 ms)
