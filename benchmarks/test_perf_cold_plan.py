"""Cold-planning performance: the batched Algorithm-1 solver vs SLSQP.

Plans the Fig. 7-shaped grid (varied sequence length L x varied world
size P) twice from a fully cold state -- once with the default batched
exact solver, once with the paper's SLSQP path pinned via
:func:`~repro.core.pipeline_degree.set_default_degree_solver` -- plus a
warm re-run against the populated caches, and records all three
wall-times in ``benchmarks/results/BENCH_planner.json``, alongside a
``step2`` series (batched vs scalar partition objective, measured by
:func:`benchmarks.test_perf_step2.measure_step2`).

Assertions:

* the batched path is >= 5x faster than the SLSQP path on the same
  machine (in practice it is orders of magnitude faster);
* both solvers plan iterations within 2% of each other (the batched
  sweep is exact; SLSQP is the near-optimal relaxation);
* with ``REPRO_PERF_SMOKE=1`` (the CI perf-smoke step), cold batched
  planning must not regress more than 3x over the committed baseline in
  ``BENCH_planner.json`` (with a 1 s absolute floor so machine-speed
  differences at the millisecond scale cannot trip it).
"""

from __future__ import annotations

import json
import platform
import time

from repro import FSMoE, solver_stats
from repro.api.registry import get_cluster
from repro.core import clear_solver_cache, set_default_degree_solver
from repro.core.pipeline_degree import _find_optimal_cached
from repro.models import get_model_preset, layer_spec_for
from repro.planner.batch import plan_many
from repro.report import ArtifactResult, ReportConfig
from repro.systems import fsmoe as fsmoe_module

from .conftest import RESULTS_DIR
from .test_perf_step2 import measure_step2

RESULTS_PATH = RESULTS_DIR / "BENCH_planner.json"

#: cold planning must beat the SLSQP path by at least this factor.
MIN_SPEEDUP = 5.0

#: CI regression guard: cold batched planning may grow at most this much
#: over the recorded baseline (plus an absolute floor, below).
MAX_REGRESSION = 3.0
REGRESSION_FLOOR_S = 1.0


def _fig7_grid(full: bool):
    """Varied L x varied P, Mixtral-7B on Testbed-A subsets."""
    seq_lens = (512, 1024, 2048) if full else (512, 1024)
    world_sizes = (16, 32, 48) if full else (16, 32)
    clusters = [get_cluster("A", total_gpus=g) for g in world_sizes]
    preset = get_model_preset("Mixtral-7B")
    specs = [
        layer_spec_for(preset, batch_size=1, seq_len=s, num_experts=4)
        for s in seq_lens
    ]
    return specs, clusters


def _reset_solver_state() -> None:
    """Drop every per-process Algorithm-1 memo so the next run is cold.

    Stats are zeroed too, so the counters read after a cold run describe
    exactly that run (including the true largest batch).
    """
    clear_solver_cache(reset_stats=True)
    _find_optimal_cached.cache_clear()
    fsmoe_module._partition_plan.cache_clear()
    fsmoe_module._merged_phase_degree.cache_clear()


def _cold_plan(specs, clusters, solver: str):
    """One fully cold ``plan_many`` sweep under the given degree solver."""
    previous = set_default_degree_solver(solver)
    _reset_solver_state()
    try:
        start = time.perf_counter()
        result = plan_many(
            specs,
            [FSMoE(solver="slsqp")],
            clusters,
            num_layers=2,
            max_workers=1,
        )
        elapsed = time.perf_counter() - start
    finally:
        set_default_degree_solver(previous)
    return elapsed, result


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure cold/warm/SLSQP planning and build the JSON baseline.

    The timings are machine-dependent, so the artifact is registered as
    non-deterministic: ``repro report`` rewrites the files, ``repro
    report --check`` skips them.
    """
    specs, clusters = _fig7_grid(config.full)

    cold_batch_s, batch_result = _cold_plan(specs, clusters, "batch")
    batch_stats = solver_stats()  # window-exact: _cold_plan zeroed them

    # Warm re-run against the populated profile store and solver memos.
    start = time.perf_counter()
    warm_result = plan_many(
        specs,
        [FSMoE(solver="slsqp")],
        clusters,
        num_layers=2,
        store=batch_result.store,
        max_workers=1,
    )
    warm_s = time.perf_counter() - start

    cold_slsqp_s, slsqp_result = _cold_plan(specs, clusters, "slsqp")

    # The Step-2 partition solver head to head (batched vs scalar
    # objective) on the full Testbed A (the grid's subsets leave no
    # Step-2 residual to solve for); perf-step2's own artifact asserts
    # on these numbers, this baseline just records them alongside the
    # planner timings.
    step2 = measure_step2(batch_result.store, get_cluster("A"))

    # Cross-check: the exact sweep and the relaxation agree closely.
    max_gap = 0.0
    for batch_point, slsqp_point in zip(
        batch_result.points, slsqp_result.points
    ):
        gap = abs(batch_point.makespan_ms - slsqp_point.makespan_ms)
        max_gap = max(max_gap, gap / slsqp_point.makespan_ms)
    warm_identical = all(
        batch_point.makespan_ms == warm_point.makespan_ms
        for batch_point, warm_point in zip(
            batch_result.points, warm_result.points
        )
    )

    speedup = cold_slsqp_s / cold_batch_s
    payload = {
        "grid": {
            "seq_lens": sorted({s.seq_len for s in specs}),
            "world_sizes": sorted({c.total_gpus for c in clusters}),
            "points": len(batch_result),
            "num_layers": 2,
        },
        "cold_batch_s": round(cold_batch_s, 4),
        "warm_batch_s": round(warm_s, 4),
        "cold_slsqp_s": round(cold_slsqp_s, 4),
        "speedup_vs_slsqp": round(speedup, 1),
        "solver": {
            "solves": batch_stats.solves,
            "cache_hits": batch_stats.cache_hits,
            "batch_calls": batch_stats.batch_calls,
            "max_batch_size": batch_stats.max_batch_size,
        },
        "step2": {
            "num_layers": step2["num_layers"],
            "de_maxiter": step2["de_maxiter"],
            "batch_s": round(step2["batch"]["wall_s"], 4),
            "scalar_s": round(step2["scalar"]["wall_s"], 4),
            "speedup": round(step2["speedup"], 1),
            "objective_calls": step2["batch"]["objective_calls"],
            "candidates": step2["batch"]["candidates"],
        },
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    summary = (
        f"cold plan_many ({len(batch_result)} points): "
        f"batch {cold_batch_s * 1e3:.1f} ms, "
        f"slsqp {cold_slsqp_s * 1e3:.1f} ms "
        f"({speedup:.0f}x), warm {warm_s * 1e3:.1f} ms"
    )
    return ArtifactResult(
        artifact="perf-planner",
        outputs={
            "perf_cold_plan.txt": summary + "\n",
            "BENCH_planner.json": json.dumps(payload, indent=2) + "\n",
        },
        data={
            "cold_batch_s": cold_batch_s,
            "speedup": speedup,
            "max_gap": max_gap,
            "warm_identical": warm_identical,
        },
    )


def test_cold_plan_batch_vs_slsqp(workspace, report_config, emit_result,
                                  benchmark):
    baseline = None
    if RESULTS_PATH.exists():
        baseline = json.loads(RESULTS_PATH.read_text())

    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    assert result.data["max_gap"] <= 0.02
    assert result.data["warm_identical"]
    assert result.data["speedup"] >= MIN_SPEEDUP

    if report_config.smoke and baseline is not None:
        limit = max(
            MAX_REGRESSION * float(baseline["cold_batch_s"]),
            REGRESSION_FLOOR_S,
        )
        assert result.data["cold_batch_s"] <= limit, (
            f"cold planning regressed: {result.data['cold_batch_s']:.3f} s "
            f"vs recorded baseline {baseline['cold_batch_s']} s "
            f"(limit {limit:.3f} s)"
        )
