"""Ablation of §3.1's customizable dispatch: AlltoAll algorithm choice.

FSMoE pre-implements three AlltoAll algorithms (NCCL direct, Hetu 1DH,
Tutel/DeepSpeed 2DH) because the best one depends on message size: the
hierarchical variants aggregate the node's traffic into fewer, larger
messages (winning the per-peer latency game at small sizes) but pay an
intra-node staging phase (losing at large sizes).  This benchmark sweeps
message sizes on both testbeds, locates the crossover, and shows the
per-layer choice the scheduler facade makes.
"""

from __future__ import annotations

from repro import MoELayerSpec
from repro.api.registry import get_cluster
from repro.bench.reporting import format_table
from repro.core.scheduler import GenericScheduler
from repro.parallel.collectives import A2AAlgorithm, CollectiveCostModel
from repro.report import ArtifactResult, ReportConfig

SIZES = tuple(int(4 ** i * 1e3) for i in range(1, 9))  # 4 KB .. 65 MB


def _crossover_table(testbed, cluster):
    """One testbed's cost sweep plus the small/large endpoint costs."""
    oracle = CollectiveCostModel(cluster)
    group = cluster.num_nodes
    rows = []
    for size in SIZES:
        costs = {
            algo: oracle.alltoall_ms(size, group, algo)
            for algo in A2AAlgorithm
        }
        best = min(costs, key=costs.get)
        rows.append(
            [
                f"{size / 1e6:.3f} MB",
                f"{costs[A2AAlgorithm.NCCL]:.4f}",
                f"{costs[A2AAlgorithm.HIER_1D]:.4f}",
                f"{costs[A2AAlgorithm.HIER_2D]:.4f}",
                best.value,
            ]
        )
    table = format_table(
        ["buffer", "NCCL (ms)", "1DH (ms)", "2DH (ms)", "best"],
        rows,
        title=(
            f"AlltoAll algorithm choice vs message size (Testbed "
            f"{testbed}, EP group of {group})"
        ),
    )
    endpoints = {
        "small_hier": oracle.alltoall_ms(SIZES[0], group, A2AAlgorithm.HIER_1D),
        "small_nccl": oracle.alltoall_ms(SIZES[0], group, A2AAlgorithm.NCCL),
        "large_hier": oracle.alltoall_ms(SIZES[-1], group, A2AAlgorithm.HIER_1D),
        "large_nccl": oracle.alltoall_ms(SIZES[-1], group, A2AAlgorithm.NCCL),
    }
    return table, endpoints


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the AlltoAll-crossover sweep for both testbeds."""
    outputs: dict[str, str] = {}
    endpoints: dict[str, dict[str, float]] = {}
    for testbed in ("A", "B"):
        cluster = get_cluster(testbed)
        table, ends = _crossover_table(testbed, cluster)
        outputs[f"ablation_a2a_algorithms_{testbed}.txt"] = table + "\n"
        endpoints[testbed] = ends
    return ArtifactResult(
        artifact="a2a-algorithms",
        outputs=outputs,
        data={"endpoints": endpoints},
    )


def test_a2a_algorithm_crossover(workspace, report_config, emit_result,
                                 benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape: the hierarchical algorithm wins somewhere small, the direct
    # algorithm wins somewhere large -- a real crossover exists.
    for testbed, ends in result.data["endpoints"].items():
        assert ends["small_hier"] < ends["small_nccl"], testbed
        assert ends["large_nccl"] < ends["large_hier"], testbed


def test_scheduler_facade_picks_per_layer(cluster_b):
    scheduler = GenericScheduler(cluster_b)
    tiny = MoELayerSpec(
        batch_size=1, seq_len=32, embed_dim=256, num_experts=8,
        top_k=1, capacity_factor=1.0, num_heads=4,
    )
    huge = MoELayerSpec(
        batch_size=4, seq_len=1024, embed_dim=4096, num_experts=8,
        top_k=2, capacity_factor=2.4, num_heads=32,
    )
    best_tiny, _ = scheduler.best_a2a_algorithm(tiny)
    best_huge, _ = scheduler.best_a2a_algorithm(huge)
    assert best_tiny is A2AAlgorithm.HIER_1D
    assert best_huge is A2AAlgorithm.NCCL
