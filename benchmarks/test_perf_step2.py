"""Step-2 partition-solver performance: batched vs scalar objective.

Runs the same differential-evolution Step-2 solve (Eq. 5) twice on the
§5 ablation stack (Mixtral-7B backward layers, Testbed A) -- once
through the default array-wise objective (``step2_impl="batch"``, one
NumPy pass per DE generation) and once through the per-candidate scalar
objective (``step2_impl="scalar"``) -- and records both wall times plus
the new Step-2 solver counters in ``benchmarks/results/perf_step2.txt``.

Assertions:

* both implementations return bit-identical plans (same seed, same
  trajectory -- the batched objective is an exact vectorization, not an
  approximation);
* the batched path is >= 5x faster than the scalar path;
* the counters prove the batching: both paths evaluate the same number
  of candidates, the batched one in far fewer objective calls.

:func:`measure_step2` is importable -- ``test_perf_cold_plan`` reuses
it to append a ``step2`` series to ``BENCH_planner.json`` (that file is
owned by the ``perf-planner`` artifact; two artifacts may not produce
one file).
"""

from __future__ import annotations

import time

from repro import solver_stats, standard_layout
from repro.api.registry import get_cluster
from repro.core.gradient_partition import (
    GeneralizedLayer,
    plan_gradient_partition,
)
from repro.models import MIXTRAL_7B, layer_spec_for
from repro.report import ArtifactResult, ReportConfig

#: the batched Step-2 objective must beat the scalar one by this factor.
MIN_SPEEDUP = 5.0


def _ablation_stack(store, cluster, num_layers):
    """The §5 ablation layers: Mixtral-7B backward on Testbed A."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = store.models(cluster, parallel)
    spec = layer_spec_for(
        MIXTRAL_7B, batch_size=1, seq_len=1024, num_experts=parallel.n_ep
    )
    profile = store.layer_profile(spec, parallel, models)
    layers = [
        GeneralizedLayer(
            ctx=profile.ctx_bw,
            dense_overlappable_ms=profile.dense_bw_ms,
            grad_bytes=profile.grad_bytes,
        )
        for _ in range(num_layers)
    ]
    return layers, models.allreduce


def measure_step2(store, cluster, *, num_layers=24, de_maxiter=40):
    """Time one Step-2 DE solve through both objective implementations.

    Returns a dict with one entry per implementation (wall time plus the
    windowed ``step2_*`` solver counters) and the derived cross-checks:
    ``speedup`` (scalar over batched wall time) and ``identical`` (the
    two plans compare equal, field for field).
    """
    layers, ar_model = _ablation_stack(store, cluster, num_layers)
    measured = {}
    plans = {}
    for impl in ("batch", "scalar"):
        before = solver_stats()
        start = time.perf_counter()
        plans[impl] = plan_gradient_partition(
            layers, ar_model, seed=0, de_maxiter=de_maxiter,
            step2_impl=impl,
        )
        wall_s = time.perf_counter() - start
        window = solver_stats() - before
        measured[impl] = {
            "wall_s": wall_s,
            "objective_calls": window.step2_objective_calls,
            "candidates": window.step2_candidates,
        }
    if measured["batch"]["candidates"] == 0:
        raise ValueError(
            f"Step 2 was skipped on this stack ({num_layers} layers, "
            f"{cluster.name}): Step 1 absorbed every gradient byte, so "
            f"the timings would compare nothing"
        )
    measured["speedup"] = (
        measured["scalar"]["wall_s"] / measured["batch"]["wall_s"]
    )
    measured["identical"] = plans["batch"] == plans["scalar"]
    measured["num_layers"] = num_layers
    measured["de_maxiter"] = de_maxiter
    return measured


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure the Step-2 objective implementations head to head.

    The timings are machine-dependent, so the artifact is registered as
    non-deterministic; it also windows the process-wide solver counters
    around each solve, so it is not parallel-safe.
    """
    cluster = get_cluster("A")
    num_layers = MIXTRAL_7B.num_layers if config.full else 24
    measured = measure_step2(
        workspace.store, cluster, num_layers=num_layers
    )
    batch, scalar = measured["batch"], measured["scalar"]
    lines = [
        f"Step-2 DE solve, {num_layers}-layer Mixtral-7B backward "
        f"(Testbed A), maxiter={measured['de_maxiter']}:",
        f"  batch : {batch['wall_s'] * 1e3:8.1f} ms  "
        f"({batch['candidates']} candidates in "
        f"{batch['objective_calls']} objective calls)",
        f"  scalar: {scalar['wall_s'] * 1e3:8.1f} ms  "
        f"({scalar['candidates']} candidates in "
        f"{scalar['objective_calls']} objective calls)",
        f"  speedup: {measured['speedup']:.1f}x, plans identical: "
        f"{measured['identical']}",
    ]
    return ArtifactResult(
        artifact="perf-step2",
        outputs={"perf_step2.txt": "\n".join(lines) + "\n"},
        data=measured,
    )


def test_step2_batch_vs_scalar(workspace, report_config, emit_result,
                               benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    batch, scalar = result.data["batch"], result.data["scalar"]
    assert result.data["identical"], (
        "batched and scalar Step-2 produced different plans"
    )
    # Both paths walk the same DE trajectory candidate for candidate;
    # the batched one folds each generation into one array pass.
    assert batch["candidates"] == scalar["candidates"] > 0
    assert batch["objective_calls"] < scalar["objective_calls"]
    assert scalar["objective_calls"] == scalar["candidates"]
    assert result.data["speedup"] >= MIN_SPEEDUP, (
        f"batched Step-2 only {result.data['speedup']:.1f}x faster "
        f"than scalar (floor {MIN_SPEEDUP}x)"
    )
