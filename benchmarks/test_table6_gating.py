"""Reproduces paper Table 6: four gating functions on GPT2-XL, Testbed B.

The paper compares iteration times of DeepSpeed-MoE against FSMoE with
GShard, X-MoE, Sigmoid and Expert-Choice routing:

=========  ==============  ===================
Gating     DeepSpeed-MoE    FSMoE
=========  ==============  ===================
GShard     968.1 ms         707.7 ms (1.37x)
X-MoE      1064.0 ms        746.9 ms (1.42x)
Sigmoid    986.6 ms         721.0 ms (1.37x)
EC         909.9 ms         685.5 ms (1.33x)
=========  ==============  ===================

Each gate carries its timing profile (routing FLOPs; EC fills experts
exactly to capacity so it moves ~17% less traffic at f=1.2), and
DeepSpeed-MoE additionally pays its unoptimized routing kernels.
"""

from __future__ import annotations

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench import evaluate_model, format_table
from repro.models import GPT2_XL
from repro.moe.gates import GateKind
from repro.report import ArtifactResult, ReportConfig
from repro.systems import DeepSpeedMoE, FSMoE

PAPER_TABLE6 = {
    GateKind.GSHARD: (968.1, 707.7, 1.37),
    GateKind.XMOE: (1064.0, 746.9, 1.42),
    GateKind.SIGMOID: (986.6, 721.0, 1.37),
    GateKind.EXPERT_CHOICE: (909.9, 685.5, 1.33),
}

GATE_LABEL = {
    GateKind.GSHARD: "GShard",
    GateKind.XMOE: "X-MoE",
    GateKind.SIGMOID: "Sigmoid",
    GateKind.EXPERT_CHOICE: "EC",
}


def run_gate(gate_kind, cluster, models, num_layers, store):
    """Both systems' iteration times under one routing function."""
    # DeepSpeedMoE applies its unoptimized-routing overhead internally.
    return evaluate_model(
        GPT2_XL,
        cluster,
        models,
        [DeepSpeedMoE(), FSMoE()],
        seq_len=256,
        num_layers=num_layers,
        gate_kind=gate_kind,
        store=store,
    )


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the Table 6 gating-function comparison."""
    cluster = get_cluster("B")
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = workspace.store.models(cluster, parallel)
    num_layers = GPT2_XL.num_layers if config.full else 6
    rows = []
    times: dict[GateKind, dict[str, float]] = {}
    for kind in (
        GateKind.GSHARD, GateKind.XMOE, GateKind.SIGMOID,
        GateKind.EXPERT_CHOICE,
    ):
        result = run_gate(kind, cluster, models, num_layers, workspace.store)
        speedup = result.speedup("FSMoE", "DS-MoE")
        times[kind] = dict(result.times_ms)
        paper_ds, paper_fs, paper_speedup = PAPER_TABLE6[kind]
        rows.append(
            [
                GATE_LABEL[kind],
                f"{result.times_ms['DS-MoE']:.1f}",
                f"{result.times_ms['FSMoE']:.1f} ({speedup:.2f}x)",
                f"{paper_ds:.1f}",
                f"{paper_fs:.1f} ({paper_speedup:.2f}x)",
            ]
        )
    table = format_table(
        ["Gating", "DS-MoE (ms)", "FSMoE (ms)", "paper DS-MoE",
         "paper FSMoE"],
        rows,
        title=(
            "Table 6 -- gating functions on GPT2-XL, Testbed B "
            "(iteration time; FSMoE speedup in parentheses)"
        ),
    )
    return ArtifactResult(
        artifact="table6",
        outputs={"table6_gating.txt": table + "\n"},
        data={"times": times},
    )


def test_table6_gating_functions(workspace, report_config, emit_result,
                                 benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    times = result.data["times"]
    # Shape assertions: every gate lands in the paper's winning band and
    # expert-choice (exact-capacity routing) is the cheapest end to end.
    for kind, per_system in times.items():
        assert per_system["DS-MoE"] / per_system["FSMoE"] > 1.15, kind
    assert (
        times[GateKind.EXPERT_CHOICE]["FSMoE"]
        < times[GateKind.GSHARD]["FSMoE"]
    )
