"""Reproduces paper Table 6: four gating functions on GPT2-XL, Testbed B.

The paper compares iteration times of DeepSpeed-MoE against FSMoE with
GShard, X-MoE, Sigmoid and Expert-Choice routing:

=========  ==============  ===================
Gating     DeepSpeed-MoE    FSMoE
=========  ==============  ===================
GShard     968.1 ms         707.7 ms (1.37x)
X-MoE      1064.0 ms        746.9 ms (1.42x)
Sigmoid    986.6 ms         721.0 ms (1.37x)
EC         909.9 ms         685.5 ms (1.33x)
=========  ==============  ===================

Each gate carries its timing profile (routing FLOPs; EC fills experts
exactly to capacity so it moves ~17% less traffic at f=1.2), and
DeepSpeed-MoE additionally pays its unoptimized routing kernels.
"""

from __future__ import annotations

from repro.bench import evaluate_model, format_table
from repro.models import GPT2_XL
from repro.moe.gates import GateKind
from repro.systems import DeepSpeedMoE, FSMoE

from .conftest import full_run

PAPER_TABLE6 = {
    GateKind.GSHARD: (968.1, 707.7, 1.37),
    GateKind.XMOE: (1064.0, 746.9, 1.42),
    GateKind.SIGMOID: (986.6, 721.0, 1.37),
    GateKind.EXPERT_CHOICE: (909.9, 685.5, 1.33),
}

GATE_LABEL = {
    GateKind.GSHARD: "GShard",
    GateKind.XMOE: "X-MoE",
    GateKind.SIGMOID: "Sigmoid",
    GateKind.EXPERT_CHOICE: "EC",
}


def run_gate(gate_kind, cluster, models, num_layers):
    # DeepSpeedMoE applies its unoptimized-routing overhead internally.
    return evaluate_model(
        GPT2_XL,
        cluster,
        models,
        [DeepSpeedMoE(), FSMoE()],
        seq_len=256,
        num_layers=num_layers,
        gate_kind=gate_kind,
    )


def test_table6_gating_functions(cluster_b, models_b, emit, benchmark):
    num_layers = GPT2_XL.num_layers if full_run() else 6
    rows = []
    speedups = {}
    for kind in (
        GateKind.GSHARD, GateKind.XMOE, GateKind.SIGMOID,
        GateKind.EXPERT_CHOICE,
    ):
        result = run_gate(kind, cluster_b, models_b, num_layers)
        speedup = result.speedup("FSMoE", "DS-MoE")
        speedups[kind] = speedup
        paper_ds, paper_fs, paper_speedup = PAPER_TABLE6[kind]
        rows.append(
            [
                GATE_LABEL[kind],
                f"{result.times_ms['DS-MoE']:.1f}",
                f"{result.times_ms['FSMoE']:.1f} ({speedup:.2f}x)",
                f"{paper_ds:.1f}",
                f"{paper_fs:.1f} ({paper_speedup:.2f}x)",
            ]
        )
    table = format_table(
        ["Gating", "DS-MoE (ms)", "FSMoE (ms)", "paper DS-MoE",
         "paper FSMoE"],
        rows,
        title=(
            "Table 6 -- gating functions on GPT2-XL, Testbed B "
            "(iteration time; FSMoE speedup in parentheses)"
        ),
    )
    emit("table6_gating", table)

    benchmark.pedantic(
        run_gate,
        args=(GateKind.GSHARD, cluster_b, models_b, 2),
        rounds=1,
        iterations=1,
    )

    # Shape assertions: every gate lands in the paper's winning band and
    # expert-choice (exact-capacity routing) is the cheapest end to end.
    for kind, speedup in speedups.items():
        assert speedup > 1.15, kind
    ec = run_gate(GateKind.EXPERT_CHOICE, cluster_b, models_b, num_layers)
    gshard = run_gate(GateKind.GSHARD, cluster_b, models_b, num_layers)
    assert ec.times_ms["FSMoE"] < gshard.times_ms["FSMoE"]
