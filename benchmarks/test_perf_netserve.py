"""Network serving performance: the wire tier at 10-100x PR-9 streams.

Drives the deterministic duplicate-heavy workload *over TCP* against a
:class:`~repro.serve.net.NetServer`:

* a **closed-loop mixed-priority** phase -- K persistent
  :class:`NetClient` threads, interactive and batch lanes mixed by the
  seeded :func:`~repro.serve.protocol.retry_priorities` coin -- the
  fleet-of-controllers shape (this phase, at 500 requests, is also the
  CI netserve smoke);
* an **open-loop** phase at a fixed arrival rate (25k requests in the
  committed run, 10x the in-process ``BENCH_serve`` stream) where
  latency is measured from each request's *scheduled* arrival, so
  queueing delay is charged to the server, never hidden by generator
  throttling.

Results land in ``benchmarks/results/BENCH_netserve.json`` with p95
latency and the shed rate.

Assertions (both run sizes):

* every request is answered; zero internal (5xx-class) errors and zero
  client-side failures;
* the exact network invariant ``requests == completed + failed + shed
  + drained`` and service invariant ``dedup_hits + resolved ==
  completed``;
* the duplicate-heavy stream deduplicates >= 95% server-side.
"""

from __future__ import annotations

import json
import platform
import tempfile
from pathlib import Path

from repro import NetServer, Workspace
from repro.core import clear_solver_cache
from repro.core.pipeline_degree import _find_optimal_cached
from repro.report import ArtifactResult, ReportConfig
from repro.serve import (
    duplicate_heavy_wire_requests,
    retry_priorities,
    run_net_closed_loop,
    run_net_open_loop,
)
from repro.systems import fsmoe as fsmoe_module
from repro.systems import tutel as tutel_module

from .conftest import RESULTS_DIR

RESULTS_PATH = RESULTS_DIR / "BENCH_netserve.json"

#: server-side dedup floor over the duplicate-heavy stream.
MIN_DEDUP_RATE = 0.95

#: offered open-loop arrival rate (requests per second) -- chosen just
#: under the single-loop server's measured ~1k req/s capacity so p95
#: reflects serving latency, not unbounded overload queueing.
OPEN_LOOP_RATE_RPS = 800.0


def _workload(config: ReportConfig) -> tuple[int, int, int, int]:
    """(closed_total, open_total, distinct, depth) for the run size."""
    if config.full:
        return 2000, 100_000, 4, 8
    if config.smoke:
        return 500, 2000, 4, 8
    return 1000, 25_000, 4, 8


def _reset_process_caches() -> None:
    """Drop every process-wide memo so the timed run starts cold."""
    clear_solver_cache(reset_stats=True)
    _find_optimal_cached.cache_clear()
    fsmoe_module._partition_plan.cache_clear()
    fsmoe_module._merged_phase_degree.cache_clear()
    tutel_module._oracle_degree.cache_clear()


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure wire-tier throughput/latency and build the JSON baseline.

    Timing-dependent (registered non-deterministic); smoke runs omit
    the committed ``BENCH_netserve.json`` so CI never rewrites the
    full-size baseline with scaled-down numbers.
    """
    closed_total, open_total, distinct, depth = _workload(config)

    with tempfile.TemporaryDirectory(prefix="repro-perf-net-") as tmp:
        _reset_process_caches()
        server = NetServer(
            Workspace(Path(tmp) / "ws"), flush_ms=2.0, workers=2
        )
        address = server.start()
        try:
            closed_payloads = duplicate_heavy_wire_requests(
                closed_total, distinct, depth=depth
            )
            closed = run_net_closed_loop(
                address,
                closed_payloads,
                clients=4,
                priorities=retry_priorities(closed_total, seed=1),
            )
            open_payloads = duplicate_heavy_wire_requests(
                open_total, distinct, depth=depth, seed=2
            )
            open_loop = run_net_open_loop(
                address,
                open_payloads,
                rate_rps=OPEN_LOOP_RATE_RPS,
                clients=16,
            )
            net = server.stats_snapshot()
            service = server.service.stats_snapshot()
        finally:
            server.close()

    shed_rate = net.shed / net.requests if net.requests else 0.0
    payload = {
        "workload": {
            "closed_loop_requests": closed_total,
            "open_loop_requests": open_total,
            "open_loop_rate_rps": OPEN_LOOP_RATE_RPS,
            "distinct_requests": distinct,
            "stack_depth": depth,
            "clients_closed": 4,
            "clients_open": 16,
        },
        "closed_loop": {
            "wall_s": round(closed.wall_s, 4),
            "throughput_rps": round(closed.throughput_rps, 1),
            "p50_latency_ms": round(closed.p50_ms, 3),
            "p95_latency_ms": round(closed.p95_ms, 3),
            "completed": closed.completed,
            "shed_gave_up": closed.shed_gave_up,
            "failed": closed.failed,
        },
        "open_loop": {
            "wall_s": round(open_loop.wall_s, 4),
            "throughput_rps": round(open_loop.throughput_rps, 1),
            "p50_latency_ms": round(open_loop.p50_ms, 3),
            "p95_latency_ms": round(open_loop.p95_ms, 3),
            "completed": open_loop.completed,
            "late_sends": open_loop.late_sends,
            "shed_gave_up": open_loop.shed_gave_up,
            "failed": open_loop.failed,
        },
        "server": {
            "requests": net.requests,
            "completed": net.completed,
            "shed": net.shed,
            "shed_rate": round(shed_rate, 4),
            "drained": net.drained,
            "dropped": net.dropped,
            "internal_errors": net.internal_errors,
            "protocol_errors": net.protocol_errors,
            "backpressure_waits": net.backpressure_waits,
            "lanes": {
                lane.name: {
                    "admitted": lane.admitted,
                    "shed": lane.shed,
                    "peak_depth": lane.peak_depth,
                }
                for lane in net.lanes
            },
        },
        "service": {
            "requests": service.requests,
            "resolved": service.resolved,
            "dedup_hits": service.dedup_hits,
            "dedup_rate": round(service.dedup_rate, 4),
            "batches": service.batches,
            "max_batch": service.max_batch,
            "p50_latency_ms": round(service.p50_latency_ms, 3),
            "p95_latency_ms": round(service.p95_latency_ms, 3),
        },
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    summary = (
        f"netserve: closed loop {closed_total} requests x4 clients "
        f"{closed.throughput_rps:.0f} req/s "
        f"(p95 {closed.p95_ms:.1f} ms), "
        f"open loop {open_total} requests @ {OPEN_LOOP_RATE_RPS:.0f} rps "
        f"{open_loop.throughput_rps:.0f} req/s "
        f"(p95 {open_loop.p95_ms:.1f} ms, "
        f"{open_loop.late_sends} late sends), "
        f"dedup {100.0 * service.dedup_rate:.1f}%, "
        f"shed rate {100.0 * shed_rate:.2f}%"
    )
    outputs = {"perf_netserve.txt": summary + "\n"}
    if not config.smoke:
        outputs["BENCH_netserve.json"] = (
            json.dumps(payload, indent=2) + "\n"
        )
    return ArtifactResult(
        artifact="perf-netserve",
        outputs=outputs,
        data={
            "closed": closed,
            "open": open_loop,
            "net": net,
            "service": service,
            "closed_total": closed_total,
            "open_total": open_total,
        },
    )


def test_netserve_wire_throughput(workspace, report_config, emit_result,
                                  benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    closed = result.data["closed"]
    open_loop = result.data["open"]
    net = result.data["net"]
    service = result.data["service"]
    total = result.data["closed_total"] + result.data["open_total"]

    # every request answered, none lost to client-side failures
    assert closed.completed + closed.shed_gave_up == closed.requests
    assert closed.failed == 0
    assert open_loop.completed + open_loop.shed_gave_up \
        == open_loop.requests
    assert open_loop.failed == 0

    # zero 5xx-class errors over the whole run
    assert net.internal_errors == 0
    assert net.protocol_errors == 0

    # the exact tier invariants
    assert net.requests == (
        net.completed + net.failed + net.shed + net.drained
    ), net.to_dict()
    assert service.dedup_hits + service.resolved == service.completed
    assert net.requests >= total  # retries only add server-side requests

    # the duplicate-heavy stream deduplicates server-side
    assert service.dedup_rate >= MIN_DEDUP_RATE, (
        f"server-side dedup {100 * service.dedup_rate:.2f}% "
        f"(required >= {100 * MIN_DEDUP_RATE:.0f}%)"
    )
