"""Reproduces paper Fig. 5: performance-model fitting quality.

Runs the online profiler's microbenchmark sweep (with measurement noise,
five repeats per point -- §6.2) on both testbeds, fits the alpha-beta
models and reports the coefficients and r-squared per operation, next to
the paper's fitted values.
"""

from __future__ import annotations

import pytest

from repro import standard_layout
from repro.bench.reporting import format_table
from repro.core.profiler import profile_cluster

#: paper Fig. 5 fitted coefficients (ms / ms-per-unit).
PAPER_FITS = {
    "A": {
        "gemm": (4.26e-2, 2.29e-11),
        "a2a": (2.87e-1, 2.21e-7),
        "allgather": (3.37e-1, 2.32e-6),
        "reducescatter": (3.95e-1, 2.34e-7),
        "allreduce": (5.11e-1, 4.95e-6),
    },
    "B": {
        "gemm": (9.24e-2, 4.42e-11),
        "a2a": (1.75e-1, 3.06e-7),
        "allgather": (3.20e-2, 1.68e-7),
        "reducescatter": (3.91e-2, 1.67e-7),
        "allreduce": (8.37e-2, 5.99e-7),
    },
}

#: paper Fig. 5 r-squared values (communication ops and GEMM).
PAPER_R2 = {
    "allreduce": 0.9999896,
    "a2a": 0.9999,
    "allgather": 0.9999653,
    "reducescatter": 0.9999599,
    "gemm": 0.9987,
}


@pytest.mark.parametrize("testbed", ["A", "B"])
def test_fig5_perf_model_fit(testbed, cluster_a, cluster_b, emit, benchmark):
    cluster = cluster_a if testbed == "A" else cluster_b
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)

    result = benchmark(
        profile_cluster, cluster, parallel, noise=0.02, repeats=5, seed=11
    )

    rows = []
    for name, model in result.models.as_dict().items():
        paper_alpha, paper_beta = PAPER_FITS[testbed][name]
        rows.append(
            [
                name,
                f"{model.alpha:.3e}",
                f"{model.beta:.3e}",
                f"{result.r_squared[name]:.6f}",
                f"{paper_alpha:.2e}",
                f"{paper_beta:.2e}",
                f"{PAPER_R2[name]:.5f}",
            ]
        )
    table = format_table(
        ["op", "alpha(ms)", "beta", "r^2", "paper alpha", "paper beta",
         "paper r^2"],
        rows,
        title=(
            f"Fig. 5 (Testbed {testbed}) -- fitted linear performance "
            f"models under 2% measurement noise, 5 repeats per point"
        ),
    )
    emit(f"fig5_testbed_{testbed}", table)

    # Shape assertion: linearity holds at the paper's quality bar.
    for name, r2 in result.r_squared.items():
        assert r2 > 0.99, (name, r2)
