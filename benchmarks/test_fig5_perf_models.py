"""Reproduces paper Fig. 5: performance-model fitting quality.

Runs the online profiler's microbenchmark sweep (with measurement noise,
five repeats per point -- §6.2) on both testbeds, fits the alpha-beta
models and reports the coefficients and r-squared per operation, next to
the paper's fitted values.
"""

from __future__ import annotations

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench.reporting import format_table
from repro.core.profiler import profile_cluster
from repro.report import ArtifactResult, ReportConfig

#: paper Fig. 5 fitted coefficients (ms / ms-per-unit).
PAPER_FITS = {
    "A": {
        "gemm": (4.26e-2, 2.29e-11),
        "a2a": (2.87e-1, 2.21e-7),
        "allgather": (3.37e-1, 2.32e-6),
        "reducescatter": (3.95e-1, 2.34e-7),
        "allreduce": (5.11e-1, 4.95e-6),
    },
    "B": {
        "gemm": (9.24e-2, 4.42e-11),
        "a2a": (1.75e-1, 3.06e-7),
        "allgather": (3.20e-2, 1.68e-7),
        "reducescatter": (3.91e-2, 1.67e-7),
        "allreduce": (8.37e-2, 5.99e-7),
    },
}

#: paper Fig. 5 r-squared values (communication ops and GEMM).
PAPER_R2 = {
    "allreduce": 0.9999896,
    "a2a": 0.9999,
    "allgather": 0.9999653,
    "reducescatter": 0.9999599,
    "gemm": 0.9987,
}


def _fit_table(testbed: str, cluster) -> tuple[str, dict[str, float]]:
    """One testbed's fit table text plus its r-squared values."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    result = profile_cluster(cluster, parallel, noise=0.02, repeats=5, seed=11)
    rows = []
    for name, model in result.models.as_dict().items():
        paper_alpha, paper_beta = PAPER_FITS[testbed][name]
        rows.append(
            [
                name,
                f"{model.alpha:.3e}",
                f"{model.beta:.3e}",
                f"{result.r_squared[name]:.6f}",
                f"{paper_alpha:.2e}",
                f"{paper_beta:.2e}",
                f"{PAPER_R2[name]:.5f}",
            ]
        )
    table = format_table(
        ["op", "alpha(ms)", "beta", "r^2", "paper alpha", "paper beta",
         "paper r^2"],
        rows,
        title=(
            f"Fig. 5 (Testbed {testbed}) -- fitted linear performance "
            f"models under 2% measurement noise, 5 repeats per point"
        ),
    )
    return table, dict(result.r_squared)


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the Fig. 5 fit-quality tables for both testbeds."""
    outputs: dict[str, str] = {}
    r_squared: dict[str, dict[str, float]] = {}
    for testbed in ("A", "B"):
        cluster = get_cluster(testbed)
        table, r2 = _fit_table(testbed, cluster)
        outputs[f"fig5_testbed_{testbed}.txt"] = table + "\n"
        r_squared[testbed] = r2
    return ArtifactResult(
        artifact="fig5", outputs=outputs, data={"r_squared": r_squared}
    )


def test_fig5_perf_model_fit(workspace, report_config, emit_result,
                             benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape assertion: linearity holds at the paper's quality bar.
    for testbed, fits in result.data["r_squared"].items():
        for name, r2 in fits.items():
            assert r2 > 0.99, (testbed, name, r2)
