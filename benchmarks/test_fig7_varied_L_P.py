"""Reproduces paper Fig. 7: robustness to sequence length and scale.

On Testbed A, vary L in {512, 1024, 2048} at P=48 and P in {16, 32, 48}
at L=1024, reporting speedups over DS-MoE (paper: FSMoE 2.17/2.72/3.14x
over DS-MoE and 1.17/1.19/1.17x over Tutel across L; 2.25/2.27/2.72x over
DS-MoE across P).
"""

from __future__ import annotations

import pytest

from repro.bench import evaluate_model, format_table
from repro.models import MIXTRAL_7B
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)

from .conftest import full_run


def systems():
    return [
        DeepSpeedMoE(), Tutel(), TutelImproved(), PipeMoELina(),
        FSMoENoIIO(), FSMoE(),
    ]


def run_case(cluster, models, seq_len, num_layers, store=None):
    return evaluate_model(
        MIXTRAL_7B, cluster, models, systems(),
        seq_len=seq_len, num_layers=num_layers, store=store,
    )


def test_fig7_varied_seq_len(cluster_a, models_a, profile_store, emit,
                             benchmark):
    num_layers = 7 if full_run() else 4
    rows = []
    results = {}
    for seq_len in (512, 1024, 2048):
        result = run_case(
            cluster_a, models_a, seq_len, num_layers, profile_store
        )
        results[seq_len] = result
        rows.append(
            [
                f"L={seq_len}",
                f"{result.speedup('FSMoE', 'DS-MoE'):.2f}x",
                f"{result.speedup('Tutel', 'DS-MoE'):.2f}x",
                f"{result.speedup('FSMoE', 'Tutel'):.2f}x",
            ]
        )
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        rows,
        title=(
            "Fig. 7a -- varied L, P=48, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.17/2.72/3.14x over DS-MoE, 1.17/1.19/1.17x over Tutel."
        ),
    )
    emit("fig7_varied_L", table)
    benchmark.pedantic(
        run_case, args=(cluster_a, models_a, 512, 2), rounds=1, iterations=1
    )
    for result in results.values():
        assert result.speedup("FSMoE", "Tutel") > 1.05


def test_fig7_varied_world_size(cluster_a, profile_store, emit, benchmark):
    from repro import standard_layout

    num_layers = 7 if full_run() else 4
    rows = []
    speedups = {}

    def run_scaled(total_gpus, layers):
        # The store keys on the scaled ClusterSpec, so each P profiles
        # once across the warm-up and measured sweeps.
        scaled = cluster_a.scaled_to(total_gpus)
        parallel = standard_layout(scaled.total_gpus, scaled.gpus_per_node)
        models = profile_store.models(scaled, parallel)
        return run_case(scaled, models, 1024, layers, profile_store)

    benchmark.pedantic(run_scaled, args=(16, 2), rounds=1, iterations=1)

    for total_gpus in (16, 32, 48):
        result = run_scaled(total_gpus, num_layers)
        speedups[total_gpus] = result
        rows.append(
            [
                f"P={total_gpus}",
                f"{result.speedup('FSMoE', 'DS-MoE'):.2f}x",
                f"{result.speedup('Tutel', 'DS-MoE'):.2f}x",
                f"{result.speedup('FSMoE', 'Tutel'):.2f}x",
            ]
        )
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        rows,
        title=(
            "Fig. 7b -- varied P, L=1024, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.25/2.27/2.72x over DS-MoE, 1.20/1.16/1.19x over Tutel."
        ),
    )
    emit("fig7_varied_P", table)
    for result in speedups.values():
        assert result.speedup("FSMoE", "Tutel") > 1.05
