"""Reproduces paper Fig. 7: robustness to sequence length and scale.

On Testbed A, vary L in {512, 1024, 2048} at P=48 and P in {16, 32, 48}
at L=1024, reporting speedups over DS-MoE (paper: FSMoE 2.17/2.72/3.14x
over DS-MoE and 1.17/1.19/1.17x over Tutel across L; 2.25/2.27/2.72x over
DS-MoE across P).

Both sweeps are one declarative :class:`ExperimentSpec` each: the L
sweep lists three stacks, the P sweep lists three scaled cluster refs --
all planned through the session workspace's caches.
"""

from __future__ import annotations

from repro.api import ClusterRef, ExperimentSpec, StackSpec
from repro.bench import format_table
from repro.models import MIXTRAL_7B
from repro.report import ArtifactResult, ReportConfig
from repro.systems import ALL_SYSTEM_KEYS


def _speedup_rows(results, labels):
    return [
        [
            label,
            f"{result.speedup('FSMoE', 'DS-MoE'):.2f}x",
            f"{result.speedup('Tutel', 'DS-MoE'):.2f}x",
            f"{result.speedup('FSMoE', 'Tutel'):.2f}x",
        ]
        for result, label in zip(results, labels)
    ]


def _varied_seq_len(workspace, config):
    num_layers = 7 if config.full else 4
    spec = ExperimentSpec(
        name="fig7-varied-L",
        clusters=(ClusterRef("A"),),
        systems=ALL_SYSTEM_KEYS,
        stacks=tuple(
            StackSpec(
                model=MIXTRAL_7B.name, seq_len=seq_len, num_layers=num_layers
            )
            for seq_len in (512, 1024, 2048)
        ),
        solver=config.step2_solver,
    )
    results = workspace.sweep(spec).config_results()
    labels = [f"L={result.spec.seq_len}" for result in results]
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        _speedup_rows(results, labels),
        title=(
            "Fig. 7a -- varied L, P=48, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.17/2.72/3.14x over DS-MoE, 1.17/1.19/1.17x over Tutel."
        ),
    )
    return table, results


def _varied_world_size(workspace, config):
    num_layers = 7 if config.full else 4
    world_sizes = (16, 32, 48)
    spec = ExperimentSpec(
        name="fig7-varied-P",
        clusters=tuple(
            ClusterRef("A", total_gpus=total) for total in world_sizes
        ),
        systems=ALL_SYSTEM_KEYS,
        stacks=(
            StackSpec(
                model=MIXTRAL_7B.name, seq_len=1024, num_layers=num_layers
            ),
        ),
        solver=config.step2_solver,
    )
    results = workspace.sweep(spec).config_results()
    labels = [f"P={total}" for total in world_sizes]
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        _speedup_rows(results, labels),
        title=(
            "Fig. 7b -- varied P, L=1024, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.25/2.27/2.72x over DS-MoE, 1.20/1.16/1.19x over Tutel."
        ),
    )
    return table, results


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate both Fig. 7 sweeps (varied L, varied P)."""
    table_l, results_l = _varied_seq_len(workspace, config)
    table_p, results_p = _varied_world_size(workspace, config)
    fsmoe_vs_tutel = [
        result.speedup("FSMoE", "Tutel") for result in results_l + results_p
    ]
    return ArtifactResult(
        artifact="fig7",
        outputs={
            "fig7_varied_L.txt": table_l + "\n",
            "fig7_varied_P.txt": table_p + "\n",
        },
        data={"fsmoe_vs_tutel": fsmoe_vs_tutel},
    )


def test_fig7_varied_L_and_P(workspace, report_config, emit_result,
                             benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    for speedup in result.data["fsmoe_vs_tutel"]:
        assert speedup > 1.05
