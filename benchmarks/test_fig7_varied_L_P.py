"""Reproduces paper Fig. 7: robustness to sequence length and scale.

On Testbed A, vary L in {512, 1024, 2048} at P=48 and P in {16, 32, 48}
at L=1024, reporting speedups over DS-MoE (paper: FSMoE 2.17/2.72/3.14x
over DS-MoE and 1.17/1.19/1.17x over Tutel across L; 2.25/2.27/2.72x over
DS-MoE across P).

Both sweeps are one declarative :class:`ExperimentSpec` each: the L
sweep lists three stacks, the P sweep lists three scaled cluster refs --
all planned through the session workspace's caches.
"""

from __future__ import annotations

from repro.api import ClusterRef, ExperimentSpec, StackSpec
from repro.bench import format_table
from repro.models import MIXTRAL_7B
from repro.systems import ALL_SYSTEM_KEYS

from .conftest import bench_solver, full_run


def test_fig7_varied_seq_len(workspace, emit, benchmark):
    num_layers = 7 if full_run() else 4
    spec = ExperimentSpec(
        name="fig7-varied-L",
        clusters=(ClusterRef("A"),),
        systems=ALL_SYSTEM_KEYS,
        stacks=tuple(
            StackSpec(
                model=MIXTRAL_7B.name, seq_len=seq_len, num_layers=num_layers
            )
            for seq_len in (512, 1024, 2048)
        ),
        solver=bench_solver(),
    )
    sweep = benchmark.pedantic(
        workspace.sweep, args=(spec,), rounds=1, iterations=1
    )
    results = sweep.config_results()

    rows = []
    for result in results:
        rows.append(
            [
                f"L={result.spec.seq_len}",
                f"{result.speedup('FSMoE', 'DS-MoE'):.2f}x",
                f"{result.speedup('Tutel', 'DS-MoE'):.2f}x",
                f"{result.speedup('FSMoE', 'Tutel'):.2f}x",
            ]
        )
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        rows,
        title=(
            "Fig. 7a -- varied L, P=48, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.17/2.72/3.14x over DS-MoE, 1.17/1.19/1.17x over Tutel."
        ),
    )
    emit("fig7_varied_L", table)
    for result in results:
        assert result.speedup("FSMoE", "Tutel") > 1.05


def test_fig7_varied_world_size(workspace, emit, benchmark):
    num_layers = 7 if full_run() else 4
    spec = ExperimentSpec(
        name="fig7-varied-P",
        clusters=tuple(
            ClusterRef("A", total_gpus=total) for total in (16, 32, 48)
        ),
        systems=ALL_SYSTEM_KEYS,
        stacks=(
            StackSpec(
                model=MIXTRAL_7B.name, seq_len=1024, num_layers=num_layers
            ),
        ),
        solver=bench_solver(),
    )
    sweep = benchmark.pedantic(
        workspace.sweep, args=(spec,), rounds=1, iterations=1
    )
    results = sweep.config_results()

    rows = []
    for result, total_gpus in zip(results, (16, 32, 48)):
        rows.append(
            [
                f"P={total_gpus}",
                f"{result.speedup('FSMoE', 'DS-MoE'):.2f}x",
                f"{result.speedup('Tutel', 'DS-MoE'):.2f}x",
                f"{result.speedup('FSMoE', 'Tutel'):.2f}x",
            ]
        )
    table = format_table(
        ["case", "FSMoE/DS-MoE", "Tutel/DS-MoE", "FSMoE/Tutel"],
        rows,
        title=(
            "Fig. 7b -- varied P, L=1024, Mixtral-7B, Testbed A.  Paper: "
            "FSMoE 2.25/2.27/2.72x over DS-MoE, 1.20/1.16/1.19x over Tutel."
        ),
    )
    emit("fig7_varied_P", table)
    for result in results:
        assert result.speedup("FSMoE", "Tutel") > 1.05
