"""Tracing overhead: traced vs untraced warm sweeps, with span invariants.

One measurement, one committed baseline (``BENCH_obs.json``): the same
warm sweep timed three ways through L1-warm workspaces --

* **untraced** -- the zero-cost-off claim's baseline (``trace=None``
  with no ``REPRO_TRACE``: every hot-path guard sees ``tracer is
  None``);
* **buffer-traced** -- an in-memory :class:`~repro.obs.Tracer`; the
  CI-enforced bound asserts this costs at most ``MAX_OVERHEAD`` of the
  untraced wall time (best-of-N against best-of-N, so scheduler noise
  cancels);
* **file-traced** -- spans appended live to a JSON-lines trace file
  (reported for context; the file adds I/O the bound does not cover).

The traced runs also prove the span-tree contract the docs promise:
every warm ``plan`` span carries exactly one ``l1_hit`` child, and the
sweep emits exactly ``1 + 2 * points`` spans plus those hits.

Under ``REPRO_PERF_SMOKE=1`` the repetition counts shrink and the
committed JSON baseline is not rewritten; the overhead floor and the
span invariants still hold.
"""

from __future__ import annotations

import json
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro import Workspace
from repro.api.spec import ExperimentSpec
from repro.obs import SpanRecord
from repro.report import ArtifactResult, ReportConfig

from .conftest import RESULTS_DIR

RESULTS_PATH = RESULTS_DIR / "BENCH_obs.json"

#: ceiling on buffer-traced / untraced warm-sweep wall time.
MAX_OVERHEAD = 1.15

SWEEP_SPEC = {
    "name": "obs-overhead",
    "clusters": ["B"],
    "systems": ["tutel", "fsmoe"],
    "stacks": [
        {
            "layers": [
                {
                    "batch_size": 1,
                    "seq_len": 256,
                    "embed_dim": 512,
                    "num_experts": 8,
                    "num_heads": 8,
                }
            ],
            "num_layers": 2,
        }
    ],
}


def _repeats(config: ReportConfig) -> int:
    if config.smoke:
        return 40
    return 200


def check_plan_outcomes(records: tuple[SpanRecord, ...]) -> int:
    """Every plan span has exactly one {l1,l2,l3}_hit/compile child.

    Returns:
        The number of plan spans checked.

    Raises:
        AssertionError: when a plan span has zero or multiple outcomes.
    """
    by_parent: dict[int, list[str]] = {}
    for record in records:
        if record.parent_id is not None:
            by_parent.setdefault(record.parent_id, []).append(record.name)
    outcomes = {"l1_hit", "l2_hit", "l3_hit", "compile"}
    plans = [r for r in records if r.name == "plan"]
    for plan in plans:
        matched = [
            name for name in by_parent.get(plan.span_id, [])
            if name in outcomes
        ]
        assert len(matched) == 1, (
            f"plan span {plan.span_id} has outcome children {matched}"
        )
    return len(plans)


def _timed_sweeps(
    workspace: Workspace, spec: ExperimentSpec, repeats: int
) -> list[float]:
    """Per-repetition wall times of an already-warm sweep (seconds)."""
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        workspace.sweep(spec, max_workers=1)
        times.append(time.perf_counter() - start)
    return times


def _measure(scratch: Path, config: ReportConfig) -> dict:
    spec = ExperimentSpec.from_dict(SWEEP_SPEC)
    repeats = _repeats(config)
    points = 2  # one stack on one cluster across two systems

    untraced = Workspace(scratch / "untraced")
    traced = Workspace(scratch / "traced", trace=True)
    file_traced = Workspace(
        scratch / "file-traced", trace=scratch / "trace.jsonl"
    )
    for workspace in (untraced, traced, file_traced):
        workspace.sweep(spec, max_workers=1)  # cold pass: L1 fills

    # Only the timed (fully warm) repetitions should be judged against
    # the span contract, so drop the cold pass's spans first.
    traced.tracer.clear()

    untraced_s = _timed_sweeps(untraced, spec, repeats)
    traced_s = _timed_sweeps(traced, spec, repeats)
    file_traced_s = _timed_sweeps(file_traced, spec, repeats)

    records = traced.tracer.spans()
    plan_spans = check_plan_outcomes(records)
    warm_hits = sum(1 for r in records if r.name == "l1_hit")
    sweep_spans = sum(1 for r in records if r.name == "sweep")

    best = min(untraced_s)
    overhead = min(traced_s) / best if best > 0 else float("inf")
    file_overhead = min(file_traced_s) / best if best > 0 else float("inf")
    return {
        "repeats": repeats,
        "points_per_sweep": points,
        "untraced_ms": 1e3 * best,
        "untraced_median_ms": 1e3 * statistics.median(untraced_s),
        "traced_ms": 1e3 * min(traced_s),
        "traced_median_ms": 1e3 * statistics.median(traced_s),
        "file_traced_ms": 1e3 * min(file_traced_s),
        "overhead": overhead,
        "file_overhead": file_overhead,
        "plan_spans": plan_spans,
        "l1_hits": warm_hits,
        "sweep_spans": sweep_spans,
        "spans_per_sweep": len(records) / repeats if repeats else 0.0,
        "dropped_spans": traced.tracer.dropped,
    }


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure tracing overhead and build the JSON baseline.

    Timing-dependent (registered non-deterministic); smoke runs omit
    the committed ``BENCH_obs.json`` so CI never rewrites the full-size
    baseline with scaled-down numbers.
    """
    with tempfile.TemporaryDirectory(prefix="repro-perf-obs-") as tmp:
        measured = _measure(Path(tmp), config)

    payload = {
        "series": {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in measured.items()
        },
        "max_overhead": MAX_OVERHEAD,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    summary = (
        f"tracing overhead: warm sweep {measured['untraced_ms']:.3f} ms "
        f"untraced vs {measured['traced_ms']:.3f} ms buffer-traced "
        f"({measured['overhead']:.3f}x, bound {MAX_OVERHEAD}x), "
        f"{measured['file_traced_ms']:.3f} ms file-traced "
        f"({measured['file_overhead']:.2f}x); "
        f"{measured['plan_spans']} plan spans all resolved l1_hit "
        f"({measured['spans_per_sweep']:.0f} spans/sweep, "
        f"{measured['dropped_spans']} dropped)"
    )
    outputs = {"perf_obs.txt": summary + "\n"}
    if not config.smoke:
        outputs["BENCH_obs.json"] = json.dumps(payload, indent=2) + "\n"
    return ArtifactResult(
        artifact="perf-obs",
        outputs=outputs,
        data=measured,
    )


def test_tracing_overhead(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    measured = result.data
    assert measured["overhead"] <= MAX_OVERHEAD, (
        f"buffer-traced warm sweep costs {measured['overhead']:.3f}x the "
        f"untraced one (bound {MAX_OVERHEAD}x)"
    )
    # The span contract of a fully warm sweep: every repetition emits
    # one sweep span, one point+plan pair per point, and every plan
    # resolves through exactly one l1_hit.
    assert measured["sweep_spans"] == measured["repeats"]
    expected_plans = measured["repeats"] * measured["points_per_sweep"]
    assert measured["plan_spans"] == expected_plans
    assert measured["l1_hits"] == expected_plans
    assert measured["dropped_spans"] == 0
