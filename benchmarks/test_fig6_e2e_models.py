"""Reproduces paper Fig. 6: end-to-end speedups over DeepSpeed-MoE.

Real-world MoE models (GPT2-XL, Mixtral-7B on both testbeds; Mixtral-22B
on Testbed A), B=1, k=2, f=1.2, E = number of nodes, L=1024 on Testbed A
and 256 on Testbed B (paper §6.4).

Paper: FSMoE 1.28-3.01x over DS-MoE; Tutel 1.16-2.59x; FSMoE averages
1.19x over Tutel, 1.12x over Tutel-Improved, 1.14x over PipeMoE+Lina and
1.07x over FSMoE-No-IIO.
"""

from __future__ import annotations

from repro.api import ClusterRef, ExperimentSpec, StackSpec
from repro.bench import format_table
from repro.models import GPT2_XL, MIXTRAL_7B, MIXTRAL_22B
from repro.report import ArtifactResult, ReportConfig
from repro.systems import ALL_SYSTEM_KEYS

SYSTEM_ORDER = (
    "DS-MoE", "Tutel", "Tutel-Improved", "PipeMoE+Lina", "FSMoE-No-IIO",
    "FSMoE",
)


CASES = [
    ("A", GPT2_XL, 1024),
    ("A", MIXTRAL_7B, 1024),
    ("A", MIXTRAL_22B, 1024),
    ("B", GPT2_XL, 256),
    ("B", MIXTRAL_7B, 256),
]


def _case_result(workspace, config, testbed, preset, seq_len):
    """One (testbed, model) sweep -> its ConfigResult."""
    # The subsampled run trims deep models to 8 layers (identical layers,
    # so speedup ratios are unchanged beyond ~4 layers).
    num_layers = (
        preset.num_layers if config.full else min(preset.num_layers, 8)
    )
    spec = ExperimentSpec(
        name=f"fig6-{preset.name}-{testbed}",
        clusters=(ClusterRef(testbed),),
        systems=ALL_SYSTEM_KEYS,
        stacks=(
            StackSpec(
                model=preset.name, seq_len=seq_len, num_layers=num_layers
            ),
        ),
        solver=config.step2_solver,
    )
    result = workspace.sweep(spec).config_results()[0]
    return result, num_layers


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the five Fig. 6 speedup tables."""
    outputs: dict[str, str] = {}
    speedups: dict[tuple[str, str], dict[str, float]] = {}
    for testbed, preset, seq_len in CASES:
        result, num_layers = _case_result(
            workspace, config, testbed, preset, seq_len
        )
        rows = [
            [
                name,
                f"{result.times_ms[name]:.1f}",
                f"{result.speedup(name, 'DS-MoE'):.2f}x",
            ]
            for name in SYSTEM_ORDER
        ]
        table = format_table(
            ["System", "iteration (ms)", "speedup vs DS-MoE"],
            rows,
            title=(
                f"Fig. 6 -- {preset.name} on Testbed {testbed} "
                f"(L={seq_len}, {num_layers} layers).  Paper bands: FSMoE "
                f"1.28-3.01x, Tutel 1.16-2.59x over DS-MoE."
            ),
        )
        outputs[f"fig6_{preset.name}_testbed_{testbed}.txt"] = table + "\n"
        speedups[(preset.name, testbed)] = {
            "fsmoe_vs_dsmoe": result.speedup("FSMoE", "DS-MoE"),
            "tutel_vs_dsmoe": result.speedup("Tutel", "DS-MoE"),
            "fsmoe_vs_tutel": result.speedup("FSMoE", "Tutel"),
            "fsmoe_vs_noiio": result.speedup("FSMoE", "FSMoE-No-IIO"),
        }
    return ArtifactResult(
        artifact="fig6", outputs=outputs, data={"speedups": speedups}
    )


def test_fig6_e2e_speedups(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape assertions (who wins), per case.
    for case, ratios in result.data["speedups"].items():
        assert ratios["fsmoe_vs_dsmoe"] > ratios["tutel_vs_dsmoe"], case
        assert ratios["fsmoe_vs_tutel"] > 1.05, case
        assert ratios["fsmoe_vs_noiio"] > 1.0, case
