"""Serving performance: the coalescing PlanService vs serial plan() loops.

Drives one deterministic duplicate-heavy request stream (many concurrent
users asking for a small set of distinct plans -- the serving shape the
ROADMAP's north star describes) through three execution models:

* ``serial_session``   -- one long-lived :class:`Workspace`, one
  blocking ``plan()`` call per request: the best a caller can do
  without the serving layer in one process;
* ``serial_per_request`` -- a fresh ``Workspace(root)`` per request:
  what independent one-shot callers sharing a root actually pay
  (measured on a subsample, reported as a rate);
* ``service``          -- the same stream submitted concurrently to one
  :class:`PlanService` and gathered.

Process-wide solver memos are reset before each timed run so no mode
inherits another's warm caches.  Results land in
``benchmarks/results/BENCH_serve.json``.

Assertions:

* plans from the service are bit-identical to the serial path;
* a pure duplicate burst deduplicates 100% beyond the first request;
* coalesced throughput >= 5x the serial session loop
  (>= 3x under ``REPRO_PERF_SMOKE=1``, where the stream is scaled down
  for CI wall-clock friendliness).
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path

from repro import Workspace
from repro.core import clear_solver_cache
from repro.core.pipeline_degree import _find_optimal_cached
from repro.report import ArtifactResult, ReportConfig
from repro.serve import (
    PlanService,
    duplicate_heavy_requests,
    run_serial_per_request,
    run_serial_session,
    run_service,
)
from repro.systems import fsmoe as fsmoe_module
from repro.systems import tutel as tutel_module

from .conftest import RESULTS_DIR

RESULTS_PATH = RESULTS_DIR / "BENCH_serve.json"

#: committed-run floor: coalesced service vs the serial session loop.
MIN_SPEEDUP = 5.0

#: CI smoke floor (scaled-down stream, shared runners).
SMOKE_MIN_SPEEDUP = 3.0


def _workload(config: ReportConfig) -> tuple[int, int, int]:
    """(total, distinct, depth) for the current run size."""
    if config.full:
        return 4000, 4, 12
    if config.smoke:
        return 600, 4, 8
    return 2500, 4, 12


def _reset_process_caches() -> None:
    """Drop every process-wide memo so each timed mode starts equal."""
    clear_solver_cache(reset_stats=True)
    _find_optimal_cached.cache_clear()
    fsmoe_module._partition_plan.cache_clear()
    fsmoe_module._merged_phase_degree.cache_clear()
    tutel_module._oracle_degree.cache_clear()


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure serving throughput and build the JSON baseline.

    Timing-dependent (registered non-deterministic); smoke runs omit
    the committed ``BENCH_serve.json`` so CI never rewrites the
    full-size baseline with scaled-down numbers.
    """
    total, distinct, depth = _workload(config)
    requests = duplicate_heavy_requests(total, distinct, depth=depth)

    with tempfile.TemporaryDirectory(prefix="repro-perf-serve-") as tmp:
        scratch = Path(tmp)
        _reset_process_caches()
        serial = run_serial_session(requests, scratch / "serial")

        _reset_process_caches()
        served = run_service(requests, scratch / "service")

        # The per-request baseline re-opens the workspace every call; a
        # subsample gives its rate without dominating the benchmark's
        # wall time (the stream is duplicate-heavy, so the subsample
        # still mixes every distinct request).
        per_request_n = min(total, 200)
        _reset_process_caches()
        per_request = run_serial_per_request(
            requests[:per_request_n], scratch / "per-request"
        )

    bit_identical = all(
        mine.to_json() == theirs.to_json()
        for mine, theirs in zip(served.plans, serial.plans)
    )
    stats = served.stats
    speedup = serial.wall_s / served.wall_s
    speedup_per_request = served.throughput_rps / per_request.throughput_rps
    payload = {
        "workload": {
            "total_requests": total,
            "distinct_requests": distinct,
            "stack_depth": depth,
            "duplicate_fraction": round(1.0 - distinct / total, 4),
        },
        "serial_session_s": round(serial.wall_s, 4),
        "serial_session_rps": round(serial.throughput_rps, 1),
        "serial_per_request_s": round(per_request.wall_s, 4),
        "serial_per_request_n": per_request_n,
        "serial_per_request_rps": round(per_request.throughput_rps, 1),
        "service_s": round(served.wall_s, 4),
        "service_rps": round(served.throughput_rps, 1),
        "speedup_vs_serial": round(speedup, 1),
        "speedup_vs_per_request": round(speedup_per_request, 1),
        "bit_identical": bit_identical,
        "service": {
            "requests": stats.requests,
            "resolved": stats.resolved,
            "dedup_hits": stats.dedup_hits,
            "dedup_rate": round(stats.dedup_rate, 4),
            "batches": stats.batches,
            "max_batch": stats.max_batch,
            "mean_batch": round(stats.mean_batch, 1),
            "p50_latency_ms": round(stats.p50_latency_ms, 3),
            "p95_latency_ms": round(stats.p95_latency_ms, 3),
        },
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    summary = (
        f"serve ({total} requests, {distinct} distinct): "
        f"serial {serial.wall_s:.3f} s "
        f"({serial.throughput_rps:.0f} req/s), "
        f"service {served.wall_s:.3f} s "
        f"({served.throughput_rps:.0f} req/s, {speedup:.1f}x), "
        f"per-request sessions {per_request.throughput_rps:.0f} req/s "
        f"({speedup_per_request:.1f}x), "
        f"dedup {100.0 * stats.dedup_rate:.1f}%"
    )
    outputs = {"perf_serve.txt": summary + "\n"}
    if not config.smoke:
        outputs["BENCH_serve.json"] = json.dumps(payload, indent=2) + "\n"
    return ArtifactResult(
        artifact="perf-serve",
        outputs=outputs,
        data={
            "total": total,
            "bit_identical": bit_identical,
            "speedup": speedup,
            "speedup_per_request": speedup_per_request,
            "stats": stats,
        },
    )


def test_serve_throughput_vs_serial(workspace, report_config, emit_result,
                                    benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    # bit-identical plans, request by request
    assert result.data["bit_identical"]

    stats = result.data["stats"]
    total = result.data["total"]
    assert stats.completed == total and stats.failed == 0
    assert stats.dedup_hits + stats.resolved == total

    floor = SMOKE_MIN_SPEEDUP if report_config.smoke else MIN_SPEEDUP
    speedup = result.data["speedup"]
    assert speedup >= floor, (
        f"coalesced service is only {speedup:.2f}x the serial loop "
        f"(required >= {floor}x)"
    )
    # the one-shot-caller baseline must lose to the service by even more
    assert result.data["speedup_per_request"] >= floor


def test_serve_duplicate_burst_dedups_fully(tmp_path, report_config):
    """A burst of one identical request resolves exactly once."""
    burst = 100 if report_config.smoke else 200
    requests = duplicate_heavy_requests(burst, 1, depth=4)
    workspace = Workspace(tmp_path / "burst")
    start = time.perf_counter()
    with PlanService(workspace, flush_ms=50.0) as service:
        futures = [service.submit(req) for req in requests]
        plans = [future.result() for future in futures]
        stats = service.stats_snapshot()
    wall = time.perf_counter() - start
    assert stats.resolved == 1, stats
    assert stats.dedup_hits == burst - 1  # 100% dedup beyond the first
    assert workspace.stats.plan_misses == 1
    first = plans[0].to_json()
    assert all(plan.to_json() == first for plan in plans)
    assert wall < 30.0
