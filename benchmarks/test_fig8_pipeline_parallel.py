"""Reproduces paper Fig. 8: speedups with pipeline parallelism enabled.

Testbed A with N_PP = 2 (GPipe): the model's layers split into two
contiguous stages of three nodes each; each stage runs the per-system
schedule per micro-batch and gradient synchronization is charged once at
the pipeline flush.  Stage plans are *heterogeneous*: an odd layer count
gives the stages different depths (Mixtral-7B's 7 layers split 4 + 3),
and :func:`gpipe_iteration_ms` consumes the per-stage times directly.

Paper: FSMoE averages 2.46x over DS-MoE, 1.16x over Tutel, 1.10x over
Tutel-Improved, 1.12x over PipeMoE+Lina and 1.05x over FSMoE-No-IIO.
"""

from __future__ import annotations

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench.reporting import format_table
from repro.models import MIXTRAL_7B, gpipe_iteration_ms, layer_spec_for, \
    microbatch_spec, split_stages
from repro.report import ArtifactResult, ReportConfig
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)

N_PP = 2
N_MICRO = 4
SYSTEM_ORDER = (
    "DS-MoE", "Tutel", "Tutel-Improved", "PipeMoE+Lina", "FSMoE-No-IIO",
    "FSMoE",
)


def pp_iteration_ms(system, preset, cluster, num_layers, store):
    """One GPipe iteration for ``system`` on a 2-stage split of the model."""
    parallel = standard_layout(
        cluster.total_gpus, cluster.gpus_per_node, n_pp=N_PP
    )
    models = store.models(cluster, parallel)
    spec = layer_spec_for(
        preset, batch_size=1, seq_len=1024, num_experts=parallel.n_ep
    )
    micro = microbatch_spec(spec, N_MICRO)
    profile = store.layer_profile(micro, parallel, models)
    fw, bw_no_gar, gar_exposed = [], [], []
    for stage_layers in split_stages(num_layers, N_PP):
        profiles = [profile] * stage_layers
        stage_fw, stage_bw, stage_bw_gar = system.phase_times_ms(
            profiles, models
        )
        fw.append(stage_fw)
        bw_no_gar.append(stage_bw)
        gar_exposed.append(stage_bw_gar - stage_bw)
    return gpipe_iteration_ms(
        fw, bw_no_gar, gar_exposed, num_stages=N_PP, num_micro=N_MICRO
    )


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the Fig. 8 pipeline-parallel speedup table."""
    cluster = get_cluster("A")
    # An odd default layer count exercises the heterogeneous-stage path
    # (stages of 3 and 2 layers) even in the subsampled run.
    num_layers = MIXTRAL_7B.num_layers if config.full else 5
    times = {}
    for system in (
        DeepSpeedMoE(), Tutel(), TutelImproved(), PipeMoELina(),
        FSMoENoIIO(), FSMoE(),
    ):
        times[system.name] = pp_iteration_ms(
            system, MIXTRAL_7B, cluster, num_layers, workspace.store
        )

    rows = [
        [
            name,
            f"{times[name]:.1f}",
            f"{times['DS-MoE'] / times[name]:.2f}x",
        ]
        for name in SYSTEM_ORDER
    ]
    table = format_table(
        ["System", "GPipe iteration (ms)", "speedup vs DS-MoE"],
        rows,
        title=(
            "Fig. 8 -- Mixtral-7B with PP enabled (N_PP=2, GPipe, 4 "
            "micro-batches), Testbed A.  Paper: FSMoE 2.46x over DS-MoE, "
            "1.16x over Tutel, 1.05x over FSMoE-No-IIO."
        ),
    )
    return ArtifactResult(
        artifact="fig8",
        outputs={"fig8_pp.txt": table + "\n"},
        data={"times": times},
    )


def test_fig8_pp_enabled(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    times = result.data["times"]
    assert times["FSMoE"] < times["Tutel"] < times["DS-MoE"]
    assert times["FSMoE"] < times["FSMoE-No-IIO"]
