"""Tiered-cache performance: L1 vs disk lookups, cross-process L3 hits.

Two measurements, one committed baseline (``BENCH_cache.json``):

* **warm lookup latency** -- the same content-addressed plan probed
  through the in-memory L1 tier (:meth:`LRUCache.get`) and through the
  disk path (read + JSON decode + key validation), plus the end-to-end
  warm ``Workspace.plan()`` rate for context.  The tier exists to make
  warm lookups non-I/O; the floor asserts L1 >= 20x the disk path.
* **cross-process L3 warm hits** -- a 4-process fleet sharing one
  in-process :class:`~repro.cache.CacheServer`: the first process
  compiles cold (publishing plans *and* profiles), the other three run
  against fresh roots and must answer every plan fetch from the shared
  tier.  The floor asserts >= 75% of the non-compiling processes' plan
  fetches are L3 hits, proved by the exact per-tier counters.

Under ``REPRO_PERF_SMOKE=1`` the loops shrink and the committed JSON
baseline is not rewritten; both floors still hold.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import Workspace
from repro.api.codec import canonical_json, digest
from repro.report import ArtifactResult, ReportConfig
from repro.cache import CacheServer
from repro.serve import duplicate_heavy_requests

from .conftest import RESULTS_DIR

RESULTS_PATH = RESULTS_DIR / "BENCH_cache.json"

SRC = Path(__file__).resolve().parent.parent / "src"

#: floor on the L1-vs-disk warm lookup ratio (both full and smoke).
MIN_L1_VS_DISK = 20.0

#: floor on the fleet's non-compiling plan fetches answered by L3.
MIN_L3_HIT_RATE = 0.75

#: the 4-process fleet: one cold compiler, three warm readers.
FLEET_WARM = 3

_CHILD = """
import json, sys
from repro import Workspace
from repro.serve import duplicate_heavy_requests

root, distinct, depth = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
requests = duplicate_heavy_requests(distinct, distinct, depth=depth)
ws = Workspace(root)  # remote tier from $REPRO_CACHE_REMOTE
for req in requests:
    ws.plan(
        req.stack, req.system, req.cluster, parallel=req.parallel,
        gate_kind=req.gate_kind, routing_overhead=req.routing_overhead,
        include_gar=req.include_gar, noise=req.noise, seed=req.seed,
    )
stats = ws.stats
cache = stats.cache
print(json.dumps({
    "plan_hits": stats.plan_hits,
    "plan_misses": stats.plan_misses,
    "profile_misses": stats.profiles.misses,
    "l2_hits": cache.l2.hits,
    "l3_hits": cache.l3.hits,
    "l3_misses": cache.l3.misses,
    "l3_writes": cache.l3.writes,
    "profiles_remote_hits": cache.profiles_remote.hits,
    "profiles_remote_writes": cache.profiles_remote.writes,
}))
"""


def _lookup_iterations(config: ReportConfig) -> int:
    if config.smoke:
        return 300
    return 2000


def _measure_lookup_tiers(scratch: Path, config: ReportConfig) -> dict:
    """Time one warm plan's L1 probe against its disk load."""
    request = duplicate_heavy_requests(1, 1, depth=4)[0]
    ws = Workspace(scratch / "lookup")
    plan_kwargs = dict(
        parallel=request.parallel,
        gate_kind=request.gate_kind,
        routing_overhead=request.routing_overhead,
        include_gar=request.include_gar,
        noise=request.noise,
        seed=request.seed,
    )
    ws.plan(request.stack, request.system, request.cluster, **plan_kwargs)

    stack, parallel, gates = Workspace.normalize_request(
        request.stack, request.cluster, request.parallel, request.gate_kind
    )
    key = ws._plan_key(
        request.cluster, parallel, stack, gates, request.system,
        request.routing_overhead, request.include_gar,
        request.noise, request.seed,
    )
    key_json = canonical_json(key)
    dig = digest(key)
    path = ws.plans_dir / f"{dig}.json"
    assert path.exists() and ws._l1.get(dig) is not None

    n = _lookup_iterations(config)
    start = time.perf_counter()
    for _ in range(n):
        assert ws._l1.get(dig) is not None
    l1_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(n):
        assert ws._load_plan_file(path, key_json) is not None
    disk_s = time.perf_counter() - start

    # End-to-end warm plan() rate for context: key encode + digest +
    # L1 hit, no disk and no solver.
    m = max(50, n // 4)
    start = time.perf_counter()
    for _ in range(m):
        ws.plan(request.stack, request.system, request.cluster,
                **plan_kwargs)
    warm_plan_s = time.perf_counter() - start

    return {
        "iterations": n,
        "l1_lookup_us": 1e6 * l1_s / n,
        "disk_lookup_us": 1e6 * disk_s / n,
        "l1_vs_disk": disk_s / l1_s if l1_s > 0 else float("inf"),
        "warm_plan_rps": m / warm_plan_s if warm_plan_s > 0 else 0.0,
    }


def _run_fleet(scratch: Path, config: ReportConfig) -> dict:
    """One cold process fills a shared L3; three warm processes hit it."""
    distinct, depth = (2, 2) if config.smoke else (2, 4)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    server = CacheServer()
    env["REPRO_CACHE_REMOTE"] = server.start()

    def child(tag: str) -> dict:
        root = scratch / f"fleet-{tag}"
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, str(root),
             str(distinct), str(depth)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    try:
        cold = child("cold")
        warm = [child(f"warm{i}") for i in range(FLEET_WARM)]
    finally:
        stat = server.store.stats
        server.close()

    warm_lookups = sum(p["plan_hits"] + p["plan_misses"] for p in warm)
    warm_l3_hits = sum(p["l3_hits"] for p in warm)
    return {
        "processes": 1 + FLEET_WARM,
        "distinct_plans": distinct,
        "stack_depth": depth,
        "cold": cold,
        "warm": warm,
        "warm_plan_lookups": warm_lookups,
        "warm_l3_hits": warm_l3_hits,
        "l3_hit_rate": warm_l3_hits / warm_lookups if warm_lookups else 0.0,
        "warm_plans_compiled": sum(p["plan_misses"] for p in warm),
        "warm_profiles_fitted": sum(p["profile_misses"] for p in warm),
        "server": {
            "entries": stat.entries,
            "bytes": stat.bytes,
            "hits": stat.hits,
            "misses": stat.misses,
        },
    }


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Measure the cache tiers and build the JSON baseline.

    Timing-dependent (registered non-deterministic); smoke runs omit
    the committed ``BENCH_cache.json`` so CI never rewrites the
    full-size baseline with scaled-down numbers.
    """
    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as tmp:
        scratch = Path(tmp)
        lookup = _measure_lookup_tiers(scratch, config)
        fleet = _run_fleet(scratch, config)

    payload = {
        "lookup": {k: round(v, 4) if isinstance(v, float) else v
                   for k, v in lookup.items()},
        "fleet": fleet,
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
    summary = (
        f"cache tiers: L1 {lookup['l1_lookup_us']:.2f} us/lookup vs disk "
        f"{lookup['disk_lookup_us']:.2f} us ({lookup['l1_vs_disk']:.0f}x), "
        f"warm plan() {lookup['warm_plan_rps']:.0f} req/s; "
        f"fleet of {fleet['processes']}: {fleet['warm_l3_hits']}/"
        f"{fleet['warm_plan_lookups']} warm plan fetches from L3 "
        f"({100.0 * fleet['l3_hit_rate']:.0f}%), "
        f"{fleet['warm_plans_compiled']} warm compiles"
    )
    outputs = {"perf_cache.txt": summary + "\n"}
    if not config.smoke:
        outputs["BENCH_cache.json"] = json.dumps(payload, indent=2) + "\n"
    return ArtifactResult(
        artifact="perf-cache",
        outputs=outputs,
        data={"lookup": lookup, "fleet": fleet},
    )


def test_cache_tiers(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)

    lookup = result.data["lookup"]
    assert lookup["l1_vs_disk"] >= MIN_L1_VS_DISK, (
        f"L1 warm lookup is only {lookup['l1_vs_disk']:.1f}x the disk "
        f"path (required >= {MIN_L1_VS_DISK}x)"
    )

    fleet = result.data["fleet"]
    # Only the cold process compiles or fits anything...
    assert fleet["cold"]["plan_misses"] == fleet["distinct_plans"]
    assert fleet["cold"]["l3_writes"] == fleet["distinct_plans"]
    assert fleet["warm_plans_compiled"] == 0
    assert fleet["warm_profiles_fitted"] == 0
    # ...and the warm fleet answers its plan fetches from the shared
    # tier (fresh roots: L1 and disk start empty).
    assert fleet["l3_hit_rate"] >= MIN_L3_HIT_RATE, (
        f"only {100.0 * fleet['l3_hit_rate']:.0f}% of warm plan fetches "
        f"hit L3 (required >= {100.0 * MIN_L3_HIT_RATE:.0f}%)"
    )
