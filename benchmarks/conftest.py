"""Shared fixtures for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the FSMoE paper and
prints it in the paper's format (also saved under ``benchmarks/results/``).
Set ``REPRO_BENCH_FULL=1`` to run full-size sweeps (e.g. all 1458 Table-5
configurations); the default subsamples for wall-clock friendliness while
preserving every swept dimension.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import standard_layout, testbed_a, testbed_b
from repro.planner import ProfileStore

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_run() -> bool:
    """True when the full-size sweeps were requested via env var."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def cluster_a():
    """Paper Testbed A."""
    return testbed_a()


@pytest.fixture(scope="session")
def cluster_b():
    """Paper Testbed B."""
    return testbed_b()


@pytest.fixture(scope="session")
def profile_store():
    """One profile cache for the whole benchmark session.

    Every benchmark that reuses a configuration (same layer spec, same
    deployment) hits this store instead of re-profiling.
    """
    return ProfileStore()


@pytest.fixture(scope="session")
def models_a(cluster_a, profile_store):
    """Fitted performance models for Testbed A (store-cached)."""
    parallel = standard_layout(cluster_a.total_gpus, cluster_a.gpus_per_node)
    return profile_store.models(cluster_a, parallel)


@pytest.fixture(scope="session")
def models_b(cluster_b, profile_store):
    """Fitted performance models for Testbed B (store-cached)."""
    parallel = standard_layout(cluster_b.total_gpus, cluster_b.gpus_per_node)
    return profile_store.models(cluster_b, parallel)


@pytest.fixture(scope="session")
def emit():
    """Print an artifact to the terminal and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _emit
