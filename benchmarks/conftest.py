"""Shared fixtures for the paper-artifact benchmarks.

Every benchmark module reproduces one table or figure of the FSMoE
paper through an importable ``produce(workspace, config) ->
ArtifactResult`` function -- the same producer ``python -m repro
report`` runs -- and a thin pytest wrapper that emits the files under
``benchmarks/results/`` and asserts the paper's qualitative claims.

Set ``REPRO_BENCH_FULL=1`` to run full-size sweeps (e.g. all 1458
Table-5 configurations); the default subsamples for wall-clock
friendliness while preserving every swept dimension.
``REPRO_BENCH_SOLVER`` overrides the FSMoE Step-2 solver and
``REPRO_PERF_SMOKE=1`` selects the scaled-down CI perf mode (see
:class:`repro.report.ReportConfig`).
"""

from __future__ import annotations

import pathlib

import pytest

from repro import Workspace, testbed_a, testbed_b
from repro.report import ArtifactResult, ReportConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_config() -> ReportConfig:
    """The env-derived producer configuration shared by the session."""
    return ReportConfig.from_env()


@pytest.fixture(scope="session")
def cluster_a():
    """Paper Testbed A."""
    return testbed_a()


@pytest.fixture(scope="session")
def cluster_b():
    """Paper Testbed B."""
    return testbed_b()


@pytest.fixture(scope="session")
def workspace(tmp_path_factory):
    """One disk-rooted :class:`~repro.api.workspace.Workspace` per session.

    Every benchmark plans through its caches: repeated configurations
    profile once, and re-planned (cluster, stack, system) points load
    from the plan cache instead of re-running the solvers.
    """
    return Workspace(tmp_path_factory.mktemp("repro-bench-ws"))


@pytest.fixture(scope="session")
def emit_result():
    """Persist an ArtifactResult under results/ and print its tables."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(result: ArtifactResult) -> None:
        for filename, text in result.outputs.items():
            (RESULTS_DIR / filename).write_text(text)
            if filename.endswith(".txt"):
                print(f"\n{'=' * 72}\n{text.rstrip()}\n{'=' * 72}")

    return _emit
