"""Shared fixtures for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the FSMoE paper and
prints it in the paper's format (also saved under ``benchmarks/results/``).
Set ``REPRO_BENCH_FULL=1`` to run full-size sweeps (e.g. all 1458 Table-5
configurations); the default subsamples for wall-clock friendliness while
preserving every swept dimension.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import Workspace, standard_layout, testbed_a, testbed_b

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_run() -> bool:
    """True when the full-size sweeps were requested via env var."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_solver() -> str:
    """FSMoE Step-2 solver for the big sweeps.

    Full-grid runs default to the fast local solver (placements within a
    fraction of a percent of differential evolution, ~20x cheaper --
    the DE solves dominate Table 5's wall time otherwise); subsampled
    runs keep the paper's DE.  Override with ``REPRO_BENCH_SOLVER``.
    """
    default = "slsqp" if full_run() else "de"
    return os.environ.get("REPRO_BENCH_SOLVER", default)


@pytest.fixture(scope="session")
def cluster_a():
    """Paper Testbed A."""
    return testbed_a()


@pytest.fixture(scope="session")
def cluster_b():
    """Paper Testbed B."""
    return testbed_b()


@pytest.fixture(scope="session")
def workspace(tmp_path_factory):
    """One disk-rooted :class:`~repro.api.workspace.Workspace` per session.

    Every benchmark plans through its caches: repeated configurations
    profile once, and re-planned (cluster, stack, system) points load
    from the plan cache instead of re-running the solvers.
    """
    return Workspace(tmp_path_factory.mktemp("repro-bench-ws"))


@pytest.fixture(scope="session")
def profile_store(workspace):
    """The session workspace's profile cache (compatibility fixture)."""
    return workspace.store


@pytest.fixture(scope="session")
def models_a(cluster_a, profile_store):
    """Fitted performance models for Testbed A (store-cached)."""
    parallel = standard_layout(cluster_a.total_gpus, cluster_a.gpus_per_node)
    return profile_store.models(cluster_a, parallel)


@pytest.fixture(scope="session")
def models_b(cluster_b, profile_store):
    """Fitted performance models for Testbed B (store-cached)."""
    parallel = standard_layout(cluster_b.total_gpus, cluster_b.gpus_per_node)
    return profile_store.models(cluster_b, parallel)


@pytest.fixture(scope="session")
def emit():
    """Print an artifact to the terminal and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _emit
