"""Reproduces paper Fig. 3: the four backpropagation schedules.

Renders the executed timelines (ASCII Gantt, same glyph legend as the
paper: D/C AlltoAll, G/S ESP collectives, E experts, R Gradient-AllReduce,
o others) for the default schedule, Tutel/PipeMoE, FSMoE without gradient
partitioning and full FSMoE on one configured layer, and checks the
qualitative claims: each added overlap shortens the makespan.
"""

from __future__ import annotations

from repro import MoELayerSpec, standard_layout
from repro.api.registry import get_cluster
from repro.models import profile_layer
from repro.report import ArtifactResult, ReportConfig
from repro.systems import DeepSpeedMoE, FSMoE, Tutel, TutelImproved

SYSTEMS = (DeepSpeedMoE(), Tutel(), TutelImproved(), FSMoE())


def render_all(cluster, models):
    """ASCII Gantt text plus per-system makespans on one layer pair."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = MoELayerSpec(
        batch_size=2,
        seq_len=1024,
        embed_dim=2048,
        hidden_scale=3,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=16,
    )
    profile = profile_layer(spec, parallel, models)
    profiles = [profile, profile]
    blocks = []
    makespans = {}
    for system in SYSTEMS:
        timeline = system.timeline(profiles, models, phase="backward")
        makespans[system.name] = timeline.makespan_ms
        blocks.append(
            f"--- {system.name} (backward, {timeline.makespan_ms:.2f} ms) ---\n"
            f"{timeline.gantt_ascii(width=96)}"
        )
    return "\n\n".join(blocks), makespans


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the Fig. 3 schedule Gantt charts (Testbed B)."""
    cluster = get_cluster("B")
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = workspace.store.models(cluster, parallel)
    text, makespans = render_all(cluster, models)
    body = (
        "Fig. 3 -- backward-pass schedules (glyphs: D dispatch, C combine, "
        "G allgather, S reducescatter, E experts, R grad-allreduce, "
        "o others)\n\n" + text
    )
    return ArtifactResult(
        artifact="fig3",
        outputs={"fig3_schedules.txt": body + "\n"},
        data={"makespans": makespans},
    )


def test_fig3_schedules(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    makespans = result.data["makespans"]
    # Fig. 3's qualitative claim: (a) default is slowest; (d) FSMoE's
    # 3-stream overlap + gradient partitioning is fastest.
    assert makespans["FSMoE"] < makespans["Tutel"]
    assert makespans["Tutel"] <= makespans["DS-MoE"]
    assert makespans["FSMoE"] < makespans["DS-MoE"] / 1.2
