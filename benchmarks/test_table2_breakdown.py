"""Reproduces paper Table 2: per-operation time breakdown.

One transformer-MoE layer of GPT2-XL and Mixtral-7B with B=4, L=1024 on
both testbeds, forward and backward, with each op's share of the phase.
Compare against the published rows (absolute ms match because the testbed
constants are calibrated to this very table; the *shape* -- which ops
dominate -- is the reproduction target).
"""

from __future__ import annotations

import pytest

from repro import MoELayerSpec, standard_layout
from repro.bench.reporting import format_table
from repro.models import GPT2_XL, MIXTRAL_7B, layer_op_breakdown, profile_layer
from repro.models.transformer import BREAKDOWN_OPS


def layer_spec(preset, parallel, seq_len):
    return MoELayerSpec(
        batch_size=4,
        seq_len=seq_len,
        embed_dim=preset.embed_dim,
        hidden_scale=preset.hidden_scale,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=preset.num_heads,
        ffn_type=preset.ffn_type,
    )


def breakdown_rows(cluster, models, seq_len):
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    rows = []
    for preset in (GPT2_XL, MIXTRAL_7B):
        spec = layer_spec(preset, parallel, seq_len)
        profile = profile_layer(spec, parallel, models)
        for phase in ("forward", "backward"):
            ops = layer_op_breakdown(profile, models, phase)
            total = sum(ops.values())
            cells = [
                f"{ops[name]:.1f} ({100 * ops[name] / total:.1f}%)"
                for name in BREAKDOWN_OPS
            ]
            rows.append([f"{preset.name}-{phase}"] + cells)
    return rows


@pytest.mark.parametrize("testbed", ["A", "B"])
def test_table2_breakdown(testbed, cluster_a, cluster_b, models_a, models_b,
                          emit, benchmark):
    cluster = cluster_a if testbed == "A" else cluster_b
    models = models_a if testbed == "A" else models_b
    seq_len = 1024

    rows = benchmark(breakdown_rows, cluster, models, seq_len)

    table = format_table(
        ["Model/Phase"] + list(BREAKDOWN_OPS),
        rows,
        title=(
            f"Table 2 (Testbed {testbed}) -- per-op time, ms (share of "
            f"phase).  Paper Testbed-B GPT2 fw: AlltoAll 11.2 (20.7%), "
            f"AG 15.5 (28.7%), RS 15.7 (29.1%), Experts 6.7 (12.4%), "
            f"Attention 4.5 (8.3%)."
        ),
    )
    emit(f"table2_testbed_{testbed}", table)

    # Shape assertions: communication dominates both phases (paper: >50%).
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = layer_spec(GPT2_XL, parallel, seq_len)
    profile = profile_layer(spec, parallel, models)
    fw = layer_op_breakdown(profile, models, "forward")
    comm = fw["AlltoAll"] + fw["AllGather"] + fw["ReduceScatter"]
    assert comm > 0.5 * sum(fw.values())
