"""Reproduces paper Table 2: per-operation time breakdown.

One transformer-MoE layer of GPT2-XL and Mixtral-7B with B=4, L=1024 on
both testbeds, forward and backward, with each op's share of the phase.
Compare against the published rows (absolute ms match because the testbed
constants are calibrated to this very table; the *shape* -- which ops
dominate -- is the reproduction target).
"""

from __future__ import annotations

from repro import MoELayerSpec, standard_layout
from repro.api.registry import get_cluster
from repro.bench.reporting import format_table
from repro.models import GPT2_XL, MIXTRAL_7B, layer_op_breakdown, profile_layer
from repro.models.transformer import BREAKDOWN_OPS
from repro.report import ArtifactResult, ReportConfig

SEQ_LEN = 1024


def layer_spec(preset, parallel, seq_len):
    """The Table-2 layer shape for one model preset."""
    return MoELayerSpec(
        batch_size=4,
        seq_len=seq_len,
        embed_dim=preset.embed_dim,
        hidden_scale=preset.hidden_scale,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=preset.num_heads,
        ffn_type=preset.ffn_type,
    )


def breakdown_rows(cluster, models, seq_len):
    """All (model, phase) breakdown rows for one testbed."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    rows = []
    for preset in (GPT2_XL, MIXTRAL_7B):
        spec = layer_spec(preset, parallel, seq_len)
        profile = profile_layer(spec, parallel, models)
        for phase in ("forward", "backward"):
            ops = layer_op_breakdown(profile, models, phase)
            total = sum(ops.values())
            cells = [
                f"{ops[name]:.1f} ({100 * ops[name] / total:.1f}%)"
                for name in BREAKDOWN_OPS
            ]
            rows.append([f"{preset.name}-{phase}"] + cells)
    return rows


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the Table 2 breakdown for both testbeds."""
    outputs: dict[str, str] = {}
    comm_fraction: dict[str, float] = {}
    for testbed in ("A", "B"):
        cluster = get_cluster(testbed)
        parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
        models = workspace.store.models(cluster, parallel)
        rows = breakdown_rows(cluster, models, SEQ_LEN)
        table = format_table(
            ["Model/Phase"] + list(BREAKDOWN_OPS),
            rows,
            title=(
                f"Table 2 (Testbed {testbed}) -- per-op time, ms (share of "
                f"phase).  Paper Testbed-B GPT2 fw: AlltoAll 11.2 (20.7%), "
                f"AG 15.5 (28.7%), RS 15.7 (29.1%), Experts 6.7 (12.4%), "
                f"Attention 4.5 (8.3%)."
            ),
        )
        outputs[f"table2_testbed_{testbed}.txt"] = table + "\n"
        fw = layer_op_breakdown(
            profile_layer(layer_spec(GPT2_XL, parallel, SEQ_LEN), parallel,
                          models),
            models,
            "forward",
        )
        comm = fw["AlltoAll"] + fw["AllGather"] + fw["ReduceScatter"]
        comm_fraction[testbed] = comm / sum(fw.values())
    return ArtifactResult(
        artifact="table2",
        outputs=outputs,
        data={"comm_fraction": comm_fraction},
    )


def test_table2_breakdown(workspace, report_config, emit_result, benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape assertions: communication dominates both phases (paper: >50%).
    for testbed, fraction in result.data["comm_fraction"].items():
        assert fraction > 0.5, (testbed, fraction)
