"""Reproduces paper Table 5: averaged speedups over Tutel on the
Table-4 configuration grid.

The paper sweeps all 1458 configurations per testbed; by default this
benchmark subsamples the grid with a stride (keeping every swept dimension
represented) so the run completes in minutes.  Set ``REPRO_BENCH_FULL=1``
for the full 1458.

Paper's Table 5:

=================  =========  =========
Schedule           Testbed-A  Testbed-B
=================  =========  =========
Tutel              1.00x      1.00x
Tutel-Improved     1.09x      1.08x
FSMoE-No-IIO       1.12x      1.16x
FSMoE              1.18x      1.22x
=================  =========  =========
"""

from __future__ import annotations

from repro.api import ClusterRef, ExperimentSpec, StackSpec
from repro.api.registry import get_cluster
from repro.bench import (
    CONFIGURED_LAYER_COUNT,
    configured_layer_grid,
    format_table,
    speedups_over,
)
from repro.report import ArtifactResult, ReportConfig

#: paper Table 5 values for the report.
PAPER_TABLE5 = {
    "A": {"Tutel": 1.00, "Tutel-Improved": 1.09, "FSMoE-No-IIO": 1.12,
          "FSMoE": 1.18},
    "B": {"Tutel": 1.00, "Tutel-Improved": 1.08, "FSMoE-No-IIO": 1.16,
          "FSMoE": 1.22},
}

#: keeps every swept dimension while cutting the grid to 1458/27 = 54.
DEFAULT_STRIDE = 27


def _testbed_table(workspace, config, testbed):
    """One testbed's Table-5 text plus its geo-mean speedups."""
    cluster = get_cluster(testbed)
    stride = 1 if config.full else DEFAULT_STRIDE
    specs = configured_layer_grid(
        testbed, num_experts=cluster.num_nodes, stride=stride
    )

    # The whole grid is one declarative experiment: concurrent planning,
    # profiling deduplicated in the workspace store, every plan cached on
    # disk.  Full runs use the fast Step-2 solver (see ReportConfig).
    experiment = ExperimentSpec(
        name=f"table5-{testbed}",
        clusters=(ClusterRef(testbed),),
        systems=("tutel", "tutel-improved", "fsmoe-no-iio", "fsmoe"),
        stacks=tuple(
            StackSpec.of(spec, num_layers=CONFIGURED_LAYER_COUNT)
            for spec in specs
        ),
        solver=config.step2_solver,
    )
    results = workspace.sweep(experiment).config_results()
    table5 = speedups_over(results, "Tutel")

    rows = [
        [name, f"{table5[name]:.2f}x", f"{PAPER_TABLE5[testbed][name]:.2f}x"]
        for name in ("Tutel", "Tutel-Improved", "FSMoE-No-IIO", "FSMoE")
    ]
    table = format_table(
        ["Schedule", f"measured ({len(specs)} configs)", "paper (1458)"],
        rows,
        title=f"Table 5 (Testbed {testbed}) -- geo-mean speedup over Tutel",
    )
    return table, table5


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate Table 5 (geo-mean speedups) for both testbeds."""
    outputs: dict[str, str] = {}
    speedups: dict[str, dict[str, float]] = {}
    for testbed in ("A", "B"):
        table, table5 = _testbed_table(workspace, config, testbed)
        outputs[f"table5_testbed_{testbed}.txt"] = table + "\n"
        speedups[testbed] = table5
    return ArtifactResult(
        artifact="table5", outputs=outputs, data={"speedups": speedups}
    )


def test_table5_configured_layers(workspace, report_config, emit_result,
                                  benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape assertions: the paper's ranking, on both testbeds.
    for testbed, table5 in result.data["speedups"].items():
        assert table5["FSMoE"] > table5["FSMoE-No-IIO"] > 1.0, testbed
        assert table5["FSMoE"] > table5["Tutel-Improved"] > 1.0, testbed
        assert table5["FSMoE"] > 1.1, testbed
