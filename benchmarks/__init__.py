"""Paper-artifact benchmarks (one module per table/figure)."""
