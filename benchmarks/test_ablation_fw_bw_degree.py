"""Ablation (paper §4.4): forward and backward need different degrees.

The paper reports that 912 of the 1458 configurations have different
optimal pipeline degrees for the forward and backward phases on Testbed B.
This benchmark reruns Algorithm 1 per phase over the (sub-sampled) grid
and reports the fraction.
"""

from __future__ import annotations

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench import configured_layer_grid, format_table
from repro.core.pipeline_degree import find_optimal_pipeline_degree
from repro.report import ArtifactResult, ReportConfig

PAPER_FRACTION = 912 / 1458  # ~62.6%


def count_differing(cluster, store, stride):
    """(differing, total) forward/backward degree disagreements."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = store.models(cluster, parallel)
    specs = configured_layer_grid(
        "B", num_experts=cluster.num_nodes, stride=stride
    )
    differing = 0
    for spec in specs:
        profile = store.layer_profile(spec, parallel, models)
        fw = find_optimal_pipeline_degree(profile.ctx_fw).degree
        bw = find_optimal_pipeline_degree(profile.ctx_bw).degree
        if fw != bw:
            differing += 1
    return differing, len(specs)


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the fw-vs-bw degree-disagreement table."""
    cluster = get_cluster("B")
    stride = 1 if config.full else 9
    differing, total = count_differing(cluster, workspace.store, stride)
    fraction = differing / total
    table = format_table(
        ["metric", "measured", "paper"],
        [
            ["configs with fw != bw degree", f"{differing}/{total}",
             "912/1458"],
            ["fraction", f"{fraction:.1%}", f"{PAPER_FRACTION:.1%}"],
        ],
        title="Ablation §4.4 -- per-phase pipeline degrees (Testbed B grid)",
    )
    return ArtifactResult(
        artifact="fw-bw-degree",
        outputs={"ablation_fw_bw_degree.txt": table + "\n"},
        data={"fraction": fraction},
    )


def test_fw_bw_degrees_differ(workspace, report_config, emit_result,
                              benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    # Shape: a substantial fraction of configurations differ, justifying
    # per-phase scheduling.
    assert result.data["fraction"] > 0.25
