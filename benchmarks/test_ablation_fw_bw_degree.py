"""Ablation (paper §4.4): forward and backward need different degrees.

The paper reports that 912 of the 1458 configurations have different
optimal pipeline degrees for the forward and backward phases on Testbed B.
This benchmark reruns Algorithm 1 per phase over the (sub-sampled) grid
and reports the fraction.
"""

from __future__ import annotations

from repro import standard_layout
from repro.bench import configured_layer_grid, format_table
from repro.core.pipeline_degree import find_optimal_pipeline_degree
from repro.models import profile_layer

from .conftest import full_run

PAPER_FRACTION = 912 / 1458  # ~62.6%


def count_differing(cluster, models, stride):
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    specs = configured_layer_grid(
        "B", num_experts=cluster.num_nodes, stride=stride
    )
    differing = 0
    for spec in specs:
        profile = profile_layer(spec, parallel, models)
        fw = find_optimal_pipeline_degree(profile.ctx_fw).degree
        bw = find_optimal_pipeline_degree(profile.ctx_bw).degree
        if fw != bw:
            differing += 1
    return differing, len(specs)


def test_fw_bw_degrees_differ(cluster_b, models_b, emit, benchmark):
    stride = 1 if full_run() else 9
    differing, total = benchmark.pedantic(
        count_differing,
        args=(cluster_b, models_b, stride),
        rounds=1,
        iterations=1,
    )
    fraction = differing / total
    table = format_table(
        ["metric", "measured", "paper"],
        [
            ["configs with fw != bw degree", f"{differing}/{total}",
             "912/1458"],
            ["fraction", f"{fraction:.1%}", f"{PAPER_FRACTION:.1%}"],
        ],
        title="Ablation §4.4 -- per-phase pipeline degrees (Testbed B grid)",
    )
    emit("ablation_fw_bw_degree", table)

    # Shape: a substantial fraction of configurations differ, justifying
    # per-phase scheduling.
    assert fraction > 0.25
