"""Ablation of §5: how much does adaptive gradient partitioning buy?

Compares four variants of FSMoE's backward pass on Mixtral-7B (Testbed A):

* ``exposed``   -- Gradient-AllReduce fully exposed at the end (no §5);
* ``step1``     -- greedy window fill only (Eq. 3/4, no differential
  evolution over the residual);
* ``full``      -- the complete two-step plan (paper FSMoE);
* ``lina-30MB`` -- Lina's fixed chunks, for reference.

The paper's Table 5 attributes ~9-13% of FSMoE's gain to the gradient
machinery (FSMoE-No-IIO over Tutel); this ablation isolates it inside the
three-stream schedule.
"""

from __future__ import annotations

from repro import standard_layout
from repro.api.registry import get_cluster
from repro.bench.reporting import format_table
from repro.core.gradient_partition import (
    GeneralizedLayer,
    plan_gradient_partition,
)
from repro.core.pipeline_degree import find_optimal_pipeline_degree
from repro.core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    THREE_STREAM,
    build_iteration_graph,
)
from repro.models import MIXTRAL_7B, layer_spec_for
from repro.report import ArtifactResult, ReportConfig
from repro.sim import simulate


def _forward_degree(profile, r_max):
    return find_optimal_pipeline_degree(profile.ctx_fw, r_max=r_max).degree


def build_variant(profiles, models, gar_mode, plan, r_max=16):
    """One IterationSpec for a (gar_mode, partition-plan) combination."""
    forward = tuple(
        LayerPhaseSchedule(
            ctx=p.ctx_fw, degree=_forward_degree(p, r_max),
            dense_ms=p.dense_fw_ms,
        )
        for p in profiles
    )
    if plan is not None:
        backward = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_bw.with_t_gar(plan.t_gar_ms[i]),
                degree=plan.solutions[i].degree,
                dense_ms=p.dense_bw_ms,
            )
            for i, p in enumerate(profiles)
        )
    else:
        backward = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_bw, degree=_forward_degree(p, r_max),
                dense_ms=p.dense_bw_ms,
            )
            for p in profiles
        )
    return IterationSpec(
        name="ablation",
        forward=forward,
        backward=backward,
        grad_bytes=tuple(p.grad_bytes for p in profiles),
        ar_model=models.allreduce,
        streams=THREE_STREAM,
        gar_mode=gar_mode,
        plan=plan,
    )


def run_ablation(cluster, num_layers, store):
    """Makespans of the four gradient-aggregation variants."""
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = store.models(cluster, parallel)
    spec = layer_spec_for(
        MIXTRAL_7B, batch_size=1, seq_len=1024, num_experts=parallel.n_ep
    )
    profiles = [store.layer_profile(spec, parallel, models)] * num_layers
    layers = [
        GeneralizedLayer(
            ctx=p.ctx_bw,
            dense_overlappable_ms=p.dense_bw_ms,
            grad_bytes=p.grad_bytes,
        )
        for p in profiles
    ]
    plan_step1 = plan_gradient_partition(
        layers, models.allreduce, use_differential_evolution=False
    )
    plan_full = plan_gradient_partition(layers, models.allreduce, seed=0)

    variants = {
        "exposed (no §5)": build_variant(
            profiles, models, GarMode.END, None
        ),
        "step1 only": build_variant(
            profiles, models, GarMode.ADAPTIVE, plan_step1
        ),
        "full plan (FSMoE)": build_variant(
            profiles, models, GarMode.ADAPTIVE, plan_full
        ),
        "lina-30MB": build_variant(
            profiles, models, GarMode.FIXED_CHUNKS, None
        ),
    }
    return {
        name: simulate(build_iteration_graph(spec)).makespan_ms
        for name, spec in variants.items()
    }


def produce(workspace, config: ReportConfig) -> ArtifactResult:
    """Regenerate the §5 gradient-partition ablation table."""
    cluster = get_cluster("A")
    num_layers = MIXTRAL_7B.num_layers if config.full else 6
    times = run_ablation(cluster, num_layers, workspace.store)
    baseline = times["exposed (no §5)"]
    rows = [
        [name, f"{t:.1f}", f"{baseline / t:.3f}x"]
        for name, t in times.items()
    ]
    table = format_table(
        ["variant", "iteration (ms)", "speedup vs exposed"],
        rows,
        title=(
            "Ablation §5 -- gradient-aggregation strategies inside the "
            "FSMoE 3-stream schedule (Mixtral-7B, Testbed A)"
        ),
    )
    return ArtifactResult(
        artifact="gradient-partition",
        outputs={"ablation_gradient_partition.txt": table + "\n"},
        data={"times": times},
    )


def test_gradient_partition_ablation(workspace, report_config, emit_result,
                                     benchmark):
    result = benchmark.pedantic(
        produce, args=(workspace, report_config), rounds=1, iterations=1
    )
    emit_result(result)
    times = result.data["times"]
    assert times["full plan (FSMoE)"] <= times["step1 only"] + 1e-6
    assert times["full plan (FSMoE)"] < times["exposed (no §5)"]
